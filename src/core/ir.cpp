#include "core/ir.h"

#include <sstream>

namespace sympiler::core {

// ---------------------------------------------------------------------------
// Expression factories
// ---------------------------------------------------------------------------

ExprPtr icon(std::int64_t v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::IntConst;
  e->ival = v;
  return e;
}

ExprPtr fcon(double v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::FloatConst;
  e->fval = v;
  return e;
}

ExprPtr var(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::Var;
  e->name = std::move(name);
  return e;
}

ExprPtr load(std::string array, ExprPtr index) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::Load;
  e->name = std::move(array);
  e->kids.push_back(std::move(index));
  return e;
}

ExprPtr bin(char op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::Binary;
  e->op = op;
  e->kids.push_back(std::move(lhs));
  e->kids.push_back(std::move(rhs));
  return e;
}

ExprPtr add(ExprPtr l, ExprPtr r) { return bin('+', std::move(l), std::move(r)); }
ExprPtr sub(ExprPtr l, ExprPtr r) { return bin('-', std::move(l), std::move(r)); }
ExprPtr mul(ExprPtr l, ExprPtr r) { return bin('*', std::move(l), std::move(r)); }

ExprPtr clone(const ExprPtr& e) {
  if (!e) return nullptr;
  auto c = std::make_shared<Expr>(*e);
  c->kids.clear();
  for (const ExprPtr& k : e->kids) c->kids.push_back(clone(k));
  return c;
}

std::string to_c(const ExprPtr& e) {
  if (!e) return "/*null*/";
  switch (e->kind) {
    case ExprKind::IntConst:
      return std::to_string(e->ival);
    case ExprKind::FloatConst: {
      std::ostringstream os;
      os.precision(17);
      os << e->fval;
      return os.str();
    }
    case ExprKind::Var:
      return e->name;
    case ExprKind::Load:
      return e->name + "[" + to_c(e->kids[0]) + "]";
    case ExprKind::Binary:
      return "(" + to_c(e->kids[0]) + " " + e->op + " " + to_c(e->kids[1]) +
             ")";
  }
  return "/*?*/";
}

// ---------------------------------------------------------------------------
// Statement factories
// ---------------------------------------------------------------------------

StmtPtr block(std::vector<StmtPtr> stmts) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::Block;
  s->body = std::move(stmts);
  return s;
}

StmtPtr for_loop(LoopInfo info, std::vector<StmtPtr> body) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::For;
  s->loop = std::move(info);
  s->body = std::move(body);
  return s;
}

StmtPtr store(std::string array, ExprPtr index, ExprPtr value, char op) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::Store;
  s->target = std::move(array);
  s->index = std::move(index);
  s->value = std::move(value);
  s->store_op = op;
  return s;
}

StmtPtr let(std::string name, ExprPtr value) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::Let;
  s->target = std::move(name);
  s->value = std::move(value);
  return s;
}

StmtPtr if_then(ExprPtr cond, std::vector<StmtPtr> then_body) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::If;
  s->cond = std::move(cond);
  s->body = std::move(then_body);
  return s;
}

StmtPtr call(std::string name, std::vector<ExprPtr> args) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::Call;
  s->target = std::move(name);
  s->call_args = std::move(args);
  return s;
}

StmtPtr comment(std::string text) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::Comment;
  s->text = std::move(text);
  return s;
}

StmtPtr clone(const StmtPtr& s) {
  if (!s) return nullptr;
  auto c = std::make_shared<Stmt>();
  c->kind = s->kind;
  for (const StmtPtr& b : s->body) c->body.push_back(clone(b));
  c->loop = s->loop;
  c->loop.lo = clone(s->loop.lo);
  c->loop.hi = clone(s->loop.hi);
  c->target = s->target;
  c->index = clone(s->index);
  c->value = clone(s->value);
  c->store_op = s->store_op;
  c->cond = clone(s->cond);
  for (const ExprPtr& a : s->call_args) c->call_args.push_back(clone(a));
  c->text = s->text;
  return c;
}

namespace {

void print_stmt(std::ostringstream& os, const StmtPtr& s, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  if (!s) return;
  switch (s->kind) {
    case StmtKind::Block:
      for (const StmtPtr& b : s->body) print_stmt(os, b, indent);
      break;
    case StmtKind::For: {
      if (s->loop.vectorize) os << pad << "#pragma omp simd\n";
      os << pad << "for (int " << s->loop.var << " = " << to_c(s->loop.lo)
         << "; " << s->loop.var << " < " << to_c(s->loop.hi) << "; ++"
         << s->loop.var << ") {\n";
      for (const StmtPtr& b : s->body) print_stmt(os, b, indent + 2);
      os << pad << "}\n";
      break;
    }
    case StmtKind::Store: {
      os << pad << s->target << "[" << to_c(s->index) << "] ";
      if (s->store_op != '=') os << s->store_op;
      os << "= " << to_c(s->value) << ";\n";
      break;
    }
    case StmtKind::Let:
      os << pad << "const int " << s->target << " = " << to_c(s->value)
         << ";\n";
      break;
    case StmtKind::If: {
      os << pad << "if (" << to_c(s->cond) << ") {\n";
      for (const StmtPtr& b : s->body) print_stmt(os, b, indent + 2);
      os << pad << "}\n";
      break;
    }
    case StmtKind::Call: {
      os << pad << s->target << "(";
      for (std::size_t i = 0; i < s->call_args.size(); ++i) {
        if (i) os << ", ";
        os << to_c(s->call_args[i]);
      }
      os << ");\n";
      break;
    }
    case StmtKind::Comment:
      os << pad << "// " << s->text << "\n";
      break;
  }
}

}  // namespace

std::string to_c(const StmtPtr& s, int indent) {
  std::ostringstream os;
  print_stmt(os, s, indent);
  return os.str();
}

// ---------------------------------------------------------------------------
// Bindings / folding / substitution
// ---------------------------------------------------------------------------

void Bindings::bind(std::string name, std::span<const index_t> data) {
  arrays_[std::move(name)] = data;
}

const index_t* Bindings::find(const std::string& name,
                              std::int64_t index) const {
  const auto it = arrays_.find(name);
  if (it == arrays_.end()) return nullptr;
  if (index < 0 || index >= static_cast<std::int64_t>(it->second.size()))
    return nullptr;
  return &it->second[static_cast<std::size_t>(index)];
}

ExprPtr fold(const ExprPtr& e, const Bindings& bindings) {
  if (!e) return nullptr;
  switch (e->kind) {
    case ExprKind::IntConst:
    case ExprKind::FloatConst:
    case ExprKind::Var:
      return clone(e);
    case ExprKind::Load: {
      ExprPtr idx = fold(e->kids[0], bindings);
      if (idx->kind == ExprKind::IntConst) {
        if (const index_t* v = bindings.find(e->name, idx->ival))
          return icon(*v);
      }
      return load(e->name, std::move(idx));
    }
    case ExprKind::Binary: {
      ExprPtr l = fold(e->kids[0], bindings);
      ExprPtr r = fold(e->kids[1], bindings);
      if (l->kind == ExprKind::IntConst && r->kind == ExprKind::IntConst) {
        switch (e->op) {
          case '+': return icon(l->ival + r->ival);
          case '-': return icon(l->ival - r->ival);
          case '*': return icon(l->ival * r->ival);
          case '/': return r->ival != 0 ? icon(l->ival / r->ival)
                                        : bin('/', std::move(l), std::move(r));
        }
      }
      return bin(e->op, std::move(l), std::move(r));
    }
  }
  return clone(e);
}

ExprPtr substitute(const ExprPtr& e, const std::string& name,
                   const ExprPtr& replacement) {
  if (!e) return nullptr;
  if (e->kind == ExprKind::Var && e->name == name) return clone(replacement);
  ExprPtr c = std::make_shared<Expr>(*e);
  c->kids.clear();
  for (const ExprPtr& k : e->kids)
    c->kids.push_back(substitute(k, name, replacement));
  return c;
}

StmtPtr substitute(const StmtPtr& s, const std::string& name,
                   const ExprPtr& replacement) {
  if (!s) return nullptr;
  StmtPtr c = clone(s);
  // A loop over the same variable shadows the binding entirely.
  if (c->kind == StmtKind::For && c->loop.var == name) return c;
  c->loop.lo = substitute(c->loop.lo, name, replacement);
  c->loop.hi = substitute(c->loop.hi, name, replacement);
  c->index = substitute(c->index, name, replacement);
  c->value = substitute(c->value, name, replacement);
  c->cond = substitute(c->cond, name, replacement);
  for (ExprPtr& a : c->call_args) a = substitute(a, name, replacement);
  std::vector<StmtPtr> new_body;
  new_body.reserve(c->body.size());
  bool shadowed = false;
  for (const StmtPtr& b : c->body) {
    if (shadowed) {
      new_body.push_back(clone(b));
      continue;
    }
    if (b && b->kind == StmtKind::Let && b->target == name) {
      // A Let redefinition shadows the binding for the following
      // statements; its own RHS may still reference the old value.
      StmtPtr redef = clone(b);
      redef->value = substitute(redef->value, name, replacement);
      new_body.push_back(std::move(redef));
      shadowed = true;
      continue;
    }
    new_body.push_back(substitute(b, name, replacement));
  }
  c->body = std::move(new_body);
  return c;
}

std::int64_t eval_int(const ExprPtr& e) {
  SYMPILER_CHECK(e && e->kind == ExprKind::IntConst,
                 "eval_int: expression is not an integer constant");
  return e->ival;
}

bool is_int_const(const ExprPtr& e) {
  return e && e->kind == ExprKind::IntConst;
}

}  // namespace sympiler::core
