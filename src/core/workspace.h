// Plan-sized numeric workspaces: every scratch buffer the numeric hot path
// touches — the relative-index scatter map, the gather/update panels, the
// packed RHS blocks and their tail accumulators, the privatized level-set
// update terms — sized once from plan-time dimensions and reused across
// every factor()/solve()/solve_batch().
//
// Ownership rules:
//  * executors own a Workspace for their single-threaded numeric phases
//    (mutable: solve() is logically const but borrows scratch);
//  * the level-set parallel interpreters and the multi-RHS batch driver use
//    one `thread_local` Workspace per OS thread for thread-private scratch,
//    grow-only, shared across plans — a warm thread re-runs any resident
//    plan without allocating; buffers that threads share (the packed RHS
//    block and the privatized terms) live in the caller's Workspace;
//  * nothing in a steady-state numeric call allocates — pinned by the
//    operator-new counter test (tests/test_alloc.cpp);
//  * a borrowed Workspace is not concurrency-safe: debug builds always
//    throw on concurrent entry via Workspace::Borrow; release builds
//    check only when the owner opted in with set_guard(true)
//    (SympilerOptions::guard_workspace), and are guard-free otherwise.
#pragma once

#include <atomic>
#include <cstddef>
#include <span>
#include <vector>

#include "blas/kernels.h"
#include "solvers/supernodal.h"
#include "util/common.h"
#include "util/fault.h"

namespace sympiler::core {

/// Width of one packed multi-RHS block: solve_batch tiles its RHS columns
/// into blocks of at most this many, solved together through the panel
/// kernels. Bounded by the multi-RHS kernels' accumulator capacity.
inline constexpr index_t kRhsBlockWidth = blas::kRhsBlockMax;

/// Width of the packed RHS blocks a batch of `nrhs` columns should be
/// tiled into. `plan_block` is the plan's rhs_block (0 means "use the
/// default width"); `parallel_lanes` is the number of workers that take
/// whole blocks concurrently — pass omp_get_max_threads() when blocks run
/// in a parallel-for (narrow blocks keep every lane busy, but never below
/// 8 columns, where packing stops paying), and 1 when blocks are swept
/// sequentially (level-set batch paths, the sequential executor). The one
/// narrowing rule shared by every batch driver.
[[nodiscard]] index_t rhs_block_width(index_t plan_block, index_t nrhs,
                                      index_t parallel_lanes);

/// The numeric scratch dimensions a plan implies. Computed by the Planner
/// at plan time (pure pattern function, cached with the plan) so executors
/// size their workspaces once, before the first numeric call. The Planner
/// trims every field its chosen path never touches — a plan must not pin
/// never-read scratch.
struct WorkspaceDims {
  index_t n = 0;                ///< problem order (map / dense scratch rows)
  index_t max_panel_rows = 0;   ///< max supernode panel rows (update tiles)
  index_t max_panel_width = 0;  ///< max supernode width (update tiles)
  index_t max_tail = 0;         ///< max below-diagonal rows of any block
  index_t rhs_block = kRhsBlockWidth;  ///< packed RHS block width
  /// Privatized cross-item update slots of the level-set solves (one per
  /// deferred update term; see parallel::UpdateSlotMap). 0 on sequential
  /// paths.
  index_t update_slots = 0;
  /// Which n-sized buffers this owner actually touches — the batch
  /// driver's per-thread workspaces and the trisolve executor need
  /// neither, and must not pin 12 bytes/row of never-read scratch.
  bool need_map = true;    ///< row -> local-row scatter map
  bool need_dense = true;  ///< dense accumulation column (simplicial)

  /// Heap bytes a Workspace sized to these dims holds.
  [[nodiscard]] std::size_t bytes() const {
    const auto rows = static_cast<std::size_t>(max_panel_rows);
    const auto bw = static_cast<std::size_t>(rhs_block > 0 ? rhs_block : 1);
    return static_cast<std::size_t>(n) *
               ((need_map ? sizeof(index_t) : 0) +
                (need_dense ? sizeof(value_t) : 0)) +
           rows * static_cast<std::size_t>(max_panel_width) * sizeof(value_t) +
           static_cast<std::size_t>(n) * static_cast<std::size_t>(rhs_block) *
               sizeof(value_t) +
           (static_cast<std::size_t>(max_tail) +
            static_cast<std::size_t>(update_slots)) *
               bw * sizeof(value_t);
  }
};

/// Dims for a supernodal Cholesky plan (factor + panel solves).
[[nodiscard]] WorkspaceDims cholesky_workspace_dims(
    const solvers::SupernodalLayout& layout);

/// Reusable numeric scratch. ensure() is grow-only: after the first call at
/// a plan's dims, later calls at the same (or smaller) dims never allocate.
class Workspace {
 public:
  Workspace() = default;
  // Workspaces are identity objects: buffers are borrowed by reference and
  // the debug borrow flag must not be duplicated.
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  void ensure(const WorkspaceDims& dims) {
    if (SYMPILER_FAULT_POINT(util::FaultSite::kAlloc))
      throw resource_exhausted_error(
          "workspace: injected allocation failure (fault site alloc)");
    const auto n = static_cast<std::size_t>(dims.n);
    const auto upd = static_cast<std::size_t>(dims.max_panel_rows) *
                     static_cast<std::size_t>(dims.max_panel_width);
    const auto rhs = n * static_cast<std::size_t>(dims.rhs_block);
    const auto bw =
        static_cast<std::size_t>(dims.rhs_block > 0 ? dims.rhs_block : 1);
    const auto tail = static_cast<std::size_t>(dims.max_tail) * bw;
    const auto terms = static_cast<std::size_t>(dims.update_slots) * bw;
    if (dims.need_map && map_.size() < n) map_.resize(n);
    if (dims.need_dense && dense_.size() < n) dense_.resize(n);
    if (update_.size() < upd) update_.resize(upd);
    if (rhs_.size() < rhs) rhs_.resize(rhs);
    if (tail_.size() < tail) tail_.resize(tail);
    if (terms_.size() < terms) terms_.resize(terms);
  }

  /// Row -> local-row scatter map (n entries).
  [[nodiscard]] std::span<index_t> map() { return map_; }
  /// Dense length-n value scratch (simplicial accumulation column).
  [[nodiscard]] std::span<value_t> dense() { return dense_; }
  /// Supernodal update tile (max_panel_rows x max_panel_width).
  [[nodiscard]] std::span<value_t> update() { return update_; }
  /// Packed RHS block (n rows x rhs_block, RHS-major).
  [[nodiscard]] value_t* rhs_block() { return rhs_.data(); }
  /// Tail gather/accumulate block (max_tail rows x rhs_block, RHS-major).
  /// Also serves as the single-RHS panel-solve tail scratch.
  [[nodiscard]] std::span<value_t> tail() { return tail_; }
  /// Privatized level-set update terms (update_slots rows x rhs_block,
  /// RHS-major; x 1 when rhs_block is 0). Shared across the level-set
  /// threads — slots are disjoint by construction.
  [[nodiscard]] std::span<value_t> terms() { return terms_; }

  /// Opt the borrow guard into release builds (debug builds always guard).
  /// Facades wire this from SympilerOptions::guard_workspace.
  void set_guard(bool on) { guard_opt_in_ = on; }

  [[nodiscard]] bool guard_enabled() const {
#ifndef NDEBUG
    return true;
#else
    return guard_opt_in_;
#endif
  }

  /// Reentrancy guard over a borrowed workspace. solve() and friends are
  /// logically const but borrow the owner's scratch, so one instance must
  /// never be entered from two threads at once (the PR 3 breaking note).
  /// Debug builds turn that footnote into a loud failure unconditionally;
  /// release builds check when the owner opted in via set_guard(true) and
  /// throw resource_exhausted_error (kResourceExhausted) on a concurrent
  /// entry instead of silently corrupting scratch. The guard releases on
  /// unwind too, so a failed borrow-holding call leaves the workspace
  /// re-borrowable (factor-after-failure).
  class Borrow {
   public:
    explicit Borrow(Workspace& ws) {
      if (!ws.guard_enabled()) return;
      if (ws.borrowed_.exchange(true, std::memory_order_acquire))
        throw resource_exhausted_error(
            "workspace: concurrent borrow — solve()/factorize() are not "
            "concurrency-safe on one instance; use solve_batch or "
            "per-thread owners");
      ws_ = &ws;
    }
    ~Borrow() {
      if (ws_ != nullptr) ws_->borrowed_.store(false, std::memory_order_release);
    }
    Borrow(const Borrow&) = delete;
    Borrow& operator=(const Borrow&) = delete;

   private:
    Workspace* ws_ = nullptr;
  };

 private:
  std::vector<index_t> map_;
  std::vector<value_t> dense_;
  std::vector<value_t> update_;
  std::vector<value_t> rhs_;
  std::vector<value_t> tail_;
  std::vector<value_t> terms_;
  std::atomic<bool> borrowed_{false};
  bool guard_opt_in_ = false;
};

/// Blocked multi-RHS solve over factored supernodal panels: `bx` holds nrhs
/// column-major dense RHS of length dims.n, overwritten by the solutions.
/// RHS columns are tiled into packed blocks of dims.rhs_block and pushed
/// through the multi-RHS panel kernels; per column the arithmetic is
/// bit-identical to panel_forward_solve + panel_backward_solve. Blocks run
/// in parallel under OpenMP with per-thread workspaces.
void blocked_panel_solve_batch(const solvers::SupernodalLayout& layout,
                               std::span<const value_t> panels,
                               const WorkspaceDims& dims,
                               std::span<value_t> bx, index_t nrhs);

}  // namespace sympiler::core
