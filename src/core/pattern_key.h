// Structural cache key for symbolic inspection results.
//
// The paper's central decoupling pays symbolic analysis once per sparsity
// pattern; a PatternKey identifies that pattern (and the inspection
// configuration) so inspection sets can be cached and shared across matrix
// instances whose values differ but whose structure recurs — the FEM
// Newton / circuit transient setting of section 1.2.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "core/options.h"
#include "sparse/csc.h"
#include "util/common.h"

namespace sympiler::core {

/// Identity of one symbolic-inspection problem: the matrix shape/pattern
/// (and for triangular solve, the RHS pattern) plus the SympilerOptions
/// fields that change what the inspector produces.
///
/// The pattern itself is captured by two independent 64-bit hashes over
/// colptr/rowind (and beta) rather than a copy of the index arrays: keys
/// stay O(1)-sized, and a false match requires a simultaneous collision of
/// both 64-bit streams at equal (n, nnz) — negligible against the lifetime
/// of any cache this library can hold.
struct PatternKey {
  index_t rows = 0;
  index_t cols = 0;
  index_t nnz = 0;
  index_t rhs_nnz = 0;               ///< |beta| for trisolve keys, 0 otherwise
  std::uint64_t structure_hash = 0;  ///< FNV-1a over the index arrays
  std::uint64_t structure_hash2 = 0; ///< independent second stream
  std::uint64_t config_hash = 0;     ///< over the inspection-relevant options

  friend bool operator==(const PatternKey&, const PatternKey&) = default;

  /// e.g. "PatternKey{100x100, nnz=460, rhs=3, 0x1a2b..., cfg=0x3c4d...}"
  [[nodiscard]] std::string to_string() const;
};

/// Hash functor for unordered containers keyed by PatternKey.
struct PatternKeyHash {
  [[nodiscard]] std::size_t operator()(const PatternKey& k) const noexcept;
};

/// Hash of the SympilerOptions fields the inspectors read. Every field is
/// folded in: a knob that only affects the numeric phase costs at worst a
/// redundant cache entry, while omitting one that steers inspection would
/// serve wrong sets.
[[nodiscard]] std::uint64_t hash_options(const SympilerOptions& opt);

/// Key for inspect_cholesky(a_lower, opt).
[[nodiscard]] PatternKey cholesky_pattern_key(const CscMatrix& a_lower,
                                              const SympilerOptions& opt);

/// Key for inspect_trisolve(l, beta, opt). The RHS pattern participates:
/// the reach-set depends on which entries of b are nonzero.
[[nodiscard]] PatternKey trisolve_pattern_key(const CscMatrix& l,
                                              std::span<const index_t> beta,
                                              const SympilerOptions& opt);

}  // namespace sympiler::core
