// Numeric-kernel benchmark driver: the VS-Block half of the perf
// trajectory, alongside BENCH_cache.json (symbolic half).
//
// Section 1 — dense kernel shapes. Every register-blocked kernel against
// its `_ref` scalar reference at the block shapes the supernodal executors
// actually produce (the acceptance shape is the supernodal gemm update,
// m~64 k~16). GF/s for both tiers plus the speedup; the two tiers are
// bit-identical (tests/test_blas.cpp), so this measures pure scheduling.
//
// Section 2 — multi-RHS kernel scaling. trsm_lower_multi throughput as the
// packed block widens: the per-column dependency chains are identical to
// trsv_lower, the win is panel reuse + unit-stride SIMD across RHS.
//
// Section 3 — end-to-end blocked solve_batch. api::Solver (supernodal
// path) and api::TriangularSolver (blocked path): nrhs looped solve()
// calls vs one blocked solve_batch(), bit-identical results.
//
// Section 4 — level-set parallel trisolve (OpenMP builds). The retired
// atomic wavefront (kept here, and only here, as the baseline — the
// library no longer contains any omp atomic) against the level-private
// deterministic scheme and its coarsened rewrites — flat schedule vs
// chain-fused vs chains+SIMD-bundles (all bit-identical; the ablation
// measures pure scheduling) — plus the packed multi-RHS level sweep and
// the chain-heavy banded tiny-level regime where fusion collapses
// thousands of barriers.
//
// Results print as tables and land in BENCH_kernels.json for the per-PR
// perf artifact. `--smoke` runs a reduced shape set with short reps (CI).
#include <cstdio>
#include <cstring>
#include <memory>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "api/solver.h"
#include "bench/common.h"
#include "blas/kernels.h"
#include "gen/generators.h"
#include "parallel/levelset.h"
#include "parallel/schedule.h"
#include "util/timer.h"

using namespace sympiler;

namespace {

std::mt19937_64 g_rng(20260730);

std::vector<value_t> random_vec(std::size_t n) {
  std::uniform_real_distribution<value_t> dist(-1.0, 1.0);
  std::vector<value_t> v(n);
  for (auto& x : v) x = dist(g_rng);
  return v;
}

std::vector<value_t> random_spd_dense(index_t n) {
  std::vector<value_t> b = random_vec(static_cast<std::size_t>(n) * n);
  std::vector<value_t> a(static_cast<std::size_t>(n) * n, 0.0);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) {
      value_t s = 0.0;
      for (index_t k = 0; k < n; ++k) s += b[i + k * n] * b[j + k * n];
      a[i + j * n] = s + (i == j ? n : 0.0);
    }
  return a;
}

/// Median seconds per call of fn, calling it `inner` times per sample.
double kernel_seconds(const std::function<void()>& fn, int inner, int reps) {
  fn();  // warm-up
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    Timer t;
    for (int i = 0; i < inner; ++i) fn();
    samples.push_back(t.seconds() / inner);
  }
  return median(samples);
}

struct KernelRow {
  std::string name;
  index_t m = 0, n = 0, k = 0;
  double flops = 0.0;
  double ref_seconds = 0.0;
  double new_seconds = 0.0;
  [[nodiscard]] double ref_gflops() const { return flops / ref_seconds / 1e9; }
  [[nodiscard]] double new_gflops() const { return flops / new_seconds / 1e9; }
  [[nodiscard]] double speedup() const { return ref_seconds / new_seconds; }
};

struct MultiRhsRow {
  index_t n = 0, nrhs = 0;
  double seconds = 0.0;   ///< per packed-block solve
  double gflops = 0.0;
  double per_rhs_vs_trsv = 0.0;  ///< trsv time / (block time / nrhs)
};

struct BatchRow {
  std::string path;
  index_t n = 0, nrhs = 0;
  double looped_seconds = 0.0;
  double blocked_seconds = 0.0;
  [[nodiscard]] double speedup() const {
    return looped_seconds / blocked_seconds;
  }
};

int inner_iters(double flops, bool smoke) {
  const double target = smoke ? 2e7 : 2e8;  // flops per timed sample
  const double it = target / (flops > 0 ? flops : 1.0);
  return static_cast<int>(it < 1 ? 1 : (it > 1e6 ? 1e6 : it));
}

KernelRow bench_gemm(index_t m, index_t n, index_t k, bool smoke) {
  const std::vector<value_t> a = random_vec(static_cast<std::size_t>(m) * k);
  const std::vector<value_t> b = random_vec(static_cast<std::size_t>(n) * k);
  std::vector<value_t> c(static_cast<std::size_t>(m) * n, 0.0);
  KernelRow row{"gemm_nt_minus", m, n, k, 2.0 * m * n * k, 0, 0};
  const int inner = inner_iters(row.flops, smoke);
  const int reps = smoke ? 3 : 5;
  row.ref_seconds = kernel_seconds(
      [&] {
        blas::gemm_nt_minus_ref(m, n, k, a.data(), m, b.data(), n, c.data(),
                                m);
      },
      inner, reps);
  row.new_seconds = kernel_seconds(
      [&] {
        blas::gemm_nt_minus(m, n, k, a.data(), m, b.data(), n, c.data(), m);
      },
      inner, reps);
  return row;
}

KernelRow bench_syrk(index_t n, index_t k, bool smoke) {
  const std::vector<value_t> a = random_vec(static_cast<std::size_t>(n) * k);
  std::vector<value_t> c(static_cast<std::size_t>(n) * n, 0.0);
  KernelRow row{"syrk_lower_minus", n, n, k,
                static_cast<double>(n) * (n + 1) * k, 0, 0};
  const int inner = inner_iters(row.flops, smoke);
  const int reps = smoke ? 3 : 5;
  row.ref_seconds = kernel_seconds(
      [&] { blas::syrk_lower_minus_ref(n, k, a.data(), n, c.data(), n); },
      inner, reps);
  row.new_seconds = kernel_seconds(
      [&] { blas::syrk_lower_minus(n, k, a.data(), n, c.data(), n); }, inner,
      reps);
  return row;
}

KernelRow bench_potrf(index_t n, bool smoke) {
  const std::vector<value_t> a = random_spd_dense(n);
  std::vector<value_t> l(a.size());
  KernelRow row{"potrf_lower", n, n, n, n / 3.0 * n * n, 0, 0};
  const int inner = inner_iters(row.flops + 8.0 * n * n, smoke);
  const int reps = smoke ? 3 : 5;
  row.ref_seconds = kernel_seconds(
      [&] {
        std::memcpy(l.data(), a.data(), a.size() * sizeof(value_t));
        blas::potrf_lower_ref(n, l.data(), n);
      },
      inner, reps);
  row.new_seconds = kernel_seconds(
      [&] {
        std::memcpy(l.data(), a.data(), a.size() * sizeof(value_t));
        blas::potrf_lower(n, l.data(), n);
      },
      inner, reps);
  return row;
}

KernelRow bench_trsm(index_t m, index_t n, bool smoke) {
  std::vector<value_t> l = random_spd_dense(n);
  blas::potrf_lower(n, l.data(), n);
  const std::vector<value_t> b0 = random_vec(static_cast<std::size_t>(m) * n);
  std::vector<value_t> b(b0.size());
  KernelRow row{"trsm_right_lower_trans", m, n, n,
                static_cast<double>(m) * n * n, 0, 0};
  const int inner = inner_iters(row.flops + 8.0 * m * n, smoke);
  const int reps = smoke ? 3 : 5;
  row.ref_seconds = kernel_seconds(
      [&] {
        std::memcpy(b.data(), b0.data(), b.size() * sizeof(value_t));
        blas::trsm_right_lower_trans_ref(m, n, l.data(), n, b.data(), m);
      },
      inner, reps);
  row.new_seconds = kernel_seconds(
      [&] {
        std::memcpy(b.data(), b0.data(), b.size() * sizeof(value_t));
        blas::trsm_right_lower_trans(m, n, l.data(), n, b.data(), m);
      },
      inner, reps);
  return row;
}

KernelRow bench_gemv(index_t m, index_t n, bool smoke) {
  const std::vector<value_t> a = random_vec(static_cast<std::size_t>(m) * n);
  const std::vector<value_t> x = random_vec(static_cast<std::size_t>(n));
  std::vector<value_t> y(static_cast<std::size_t>(m), 0.0);
  KernelRow row{"gemv_minus", m, n, 1, 2.0 * m * n, 0, 0};
  const int inner = inner_iters(row.flops, smoke);
  const int reps = smoke ? 3 : 5;
  row.ref_seconds = kernel_seconds(
      [&] { blas::gemv_minus_ref(m, n, a.data(), m, x.data(), y.data()); },
      inner, reps);
  row.new_seconds = kernel_seconds(
      [&] { blas::gemv_minus(m, n, a.data(), m, x.data(), y.data()); }, inner,
      reps);
  return row;
}

MultiRhsRow bench_trsm_multi(index_t n, index_t nrhs, double trsv_seconds,
                             bool smoke) {
  std::vector<value_t> l = random_spd_dense(n);
  blas::potrf_lower(n, l.data(), n);
  const std::vector<value_t> x0 =
      random_vec(static_cast<std::size_t>(n) * nrhs);
  std::vector<value_t> x(x0.size());
  MultiRhsRow row{n, nrhs, 0, 0, 0};
  const double flops = static_cast<double>(n) * n * nrhs;
  const int inner = inner_iters(flops + 8.0 * n * nrhs, smoke);
  const int reps = smoke ? 3 : 5;
  row.seconds = kernel_seconds(
      [&] {
        std::memcpy(x.data(), x0.data(), x.size() * sizeof(value_t));
        blas::trsm_lower_multi(n, nrhs, l.data(), n, x.data(), nrhs);
      },
      inner, reps);
  row.gflops = flops / row.seconds / 1e9;
  row.per_rhs_vs_trsv = trsv_seconds / (row.seconds / nrhs);
  return row;
}

BatchRow bench_solver_batch(const CscMatrix& a, const char* label,
                            index_t nrhs, bool smoke) {
  api::SolverConfig config;
  config.enable_parallel = false;  // measure the blocked kernels themselves
  api::Solver solver(config, nullptr);
  solver.factor(a);
  const auto n = static_cast<std::size_t>(a.cols());
  const std::vector<value_t> base = random_vec(n * nrhs);
  std::vector<value_t> xs(base.size());
  BatchRow row{std::string(label) + "/" + api::to_string(solver.path()),
               a.cols(), nrhs, 0, 0};
  const int reps = smoke ? 3 : 5;
  row.looped_seconds = bench::median_seconds(
      [&] {
        std::memcpy(xs.data(), base.data(), xs.size() * sizeof(value_t));
        for (index_t r = 0; r < nrhs; ++r)
          solver.solve(std::span<value_t>(xs).subspan(r * n, n));
      },
      reps);
  row.blocked_seconds = bench::median_seconds(
      [&] {
        std::memcpy(xs.data(), base.data(), xs.size() * sizeof(value_t));
        solver.solve_batch(xs, nrhs);
      },
      reps);
  return row;
}

BatchRow bench_trisolve_batch(const CscMatrix& a, index_t nrhs, bool smoke) {
  api::SolverConfig config;
  config.enable_parallel = false;
  api::Solver chol(config, nullptr);
  chol.factor(a);
  const CscMatrix l = chol.factor_csc();
  std::vector<index_t> beta(static_cast<std::size_t>(l.cols()));
  for (index_t j = 0; j < l.cols(); ++j) beta[j] = j;  // dense RHS pattern
  api::TriangularSolver tri(l, beta, config, nullptr);
  const auto n = static_cast<std::size_t>(l.cols());
  const std::vector<value_t> base = random_vec(n * nrhs);
  std::vector<value_t> xs(base.size());
  BatchRow row{std::string("trisolve/") + api::to_string(tri.path()), l.cols(),
               nrhs, 0, 0};
  const int reps = smoke ? 3 : 5;
  row.looped_seconds = bench::median_seconds(
      [&] {
        std::memcpy(xs.data(), base.data(), xs.size() * sizeof(value_t));
        for (index_t r = 0; r < nrhs; ++r)
          tri.solve(std::span<value_t>(xs).subspan(r * n, n));
      },
      reps);
  row.blocked_seconds = bench::median_seconds(
      [&] {
        std::memcpy(xs.data(), base.data(), xs.size() * sizeof(value_t));
        tri.solve_batch(xs, nrhs);
      },
      reps);
  return row;
}

struct ParTriRow {
  std::string scheme;
  index_t n = 0, nrhs = 1;
  double seconds = 0.0;  ///< per full (possibly batched) solve
  double per_rhs_vs_serial = 0.0;
};

/// The pre-fix wavefront with per-element atomics — result bits depend on
/// thread interleaving, which is exactly why the library replaced it.
/// Benchmarked here to quantify what determinism costs (or saves).
void atomic_trisolve(const CscMatrix& l,
                     const parallel::LevelSchedule& schedule,
                     std::span<value_t> x) {
  const index_t* Li = l.rowind.data();
  const value_t* Lx = l.values.data();
  value_t* xp = x.data();
#ifdef SYMPILER_HAS_OPENMP
#pragma omp parallel
#endif
  for (index_t lev = 0; lev < schedule.levels(); ++lev) {
    const index_t lo = schedule.level_ptr[lev];
    const index_t hi = schedule.level_ptr[lev + 1];
#ifdef SYMPILER_HAS_OPENMP
#pragma omp for schedule(static)
#endif
    for (index_t t = lo; t < hi; ++t) {
      const index_t j = schedule.items[t];
      const index_t p0 = l.col_begin(j);
      const value_t xj = xp[j] / Lx[p0];
      xp[j] = xj;
      for (index_t p = p0 + 1; p < l.col_end(j); ++p) {
#ifdef SYMPILER_HAS_OPENMP
#pragma omp atomic
#endif
        xp[Li[p]] -= Lx[p] * xj;
      }
    }
  }
}

std::vector<ParTriRow> bench_parallel_trisolve(bool smoke) {
  const index_t g = smoke ? 60 : 110;
  const CscMatrix a = gen::grid2d_laplacian(g, g);
  api::SolverConfig chol_config;
  chol_config.enable_parallel = false;
  api::Solver chol(chol_config, nullptr);
  chol.factor(a);
  const CscMatrix l = chol.factor_csc();
  const index_t n = l.cols();
  std::vector<index_t> beta(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) beta[static_cast<std::size_t>(j)] = j;

  core::PlannerConfig pc;
  pc.options.vsblock_min_avg_size = 1e9;  // pruned baseline, parallel plan
  pc.enable_parallel = true;
  pc.parallel_min_avg_level_width = 0.0;
  auto plan = std::make_shared<const core::TriSolvePlan>(
      core::Planner(pc).plan_trisolve(l, beta, nullptr, /*with_key=*/false));
  if (plan->path != core::ExecutionPath::ParallelTriSolve)
    return {};  // sequential build: the planner never opens the path

  // Coarsening ablation variants of the same plan: the planner-built
  // `plan` carries chains + SIMD bundles; `flat` drops the aggregate
  // schedule (flat level sweep), `chains` re-coarsens with bundling off.
  // All three interpret identical slot maps, so the rows isolate the
  // scheduling rewrite.
  core::TriSolvePlan flat = *plan;
  flat.agg = parallel::AggregateSchedule{};
  core::TriSolvePlan chains = *plan;
  chains.agg = parallel::coarsen_schedule_columns(
      l, plan->schedule, parallel::CoarsenOptions{true, false});

  const int reps = smoke ? 3 : 5;
  std::vector<ParTriRow> rows;
  const std::vector<value_t> b = random_vec(static_cast<std::size_t>(n));
  std::vector<value_t> x(b.size());

  core::TriSolveExecutor serial(plan, l);
  const double serial_seconds = bench::median_seconds(
      [&] {
        std::memcpy(x.data(), b.data(), x.size() * sizeof(value_t));
        serial.solve(x);
      },
      reps);
  rows.push_back({"serial-pruned", n, 1, serial_seconds, 1.0});

  const double atomic_seconds = bench::median_seconds(
      [&] {
        std::memcpy(x.data(), b.data(), x.size() * sizeof(value_t));
        atomic_trisolve(l, plan->schedule, x);
      },
      reps);
  rows.push_back(
      {"atomic (retired)", n, 1, atomic_seconds,
       serial_seconds / atomic_seconds});

  core::Workspace ws;
  const auto time_scheme = [&](const core::TriSolvePlan& p) {
    return bench::median_seconds(
        [&] {
          std::memcpy(x.data(), b.data(), x.size() * sizeof(value_t));
          parallel::parallel_trisolve(l, p, x, ws);
        },
        reps);
  };
  const double flat_seconds = time_scheme(flat);
  rows.push_back({"level-private (flat)", n, 1, flat_seconds,
                  serial_seconds / flat_seconds});
  const double chain_seconds = time_scheme(chains);
  rows.push_back({"chain-fused", n, 1, chain_seconds,
                  serial_seconds / chain_seconds});
  const double coarse_seconds = time_scheme(*plan);
  rows.push_back({"chains+bundles", n, 1, coarse_seconds,
                  serial_seconds / coarse_seconds});

  for (const index_t nrhs : {8, 32}) {
    const std::vector<value_t> base =
        random_vec(static_cast<std::size_t>(n) * nrhs);
    std::vector<value_t> xs(base.size());
    const double batch_seconds = bench::median_seconds(
        [&] {
          std::memcpy(xs.data(), base.data(), xs.size() * sizeof(value_t));
          parallel::parallel_trisolve_batch(l, *plan, xs, nrhs, ws);
        },
        reps);
    rows.push_back({"coarsened-multi", n, nrhs, batch_seconds,
                    serial_seconds / (batch_seconds / nrhs)});
  }

  // Tiny-level regime: a narrow banded factor has an almost purely
  // sequential schedule (thousands of levels of width ~1). These levels
  // now skip the omp-for and run serially under `single` — this case
  // tracks what the per-level chunking buys where it matters most.
  {
    const index_t bn = smoke ? 3000 : 12000;
    const CscMatrix ab = gen::banded_spd(bn, 8, 11);
    api::Solver bchol(chol_config, nullptr);
    bchol.factor(ab);
    const CscMatrix lb = bchol.factor_csc();
    std::vector<index_t> bbeta(static_cast<std::size_t>(lb.cols()));
    for (index_t j = 0; j < lb.cols(); ++j)
      bbeta[static_cast<std::size_t>(j)] = j;
    auto bplan = std::make_shared<const core::TriSolvePlan>(
        core::Planner(pc).plan_trisolve(lb, bbeta, nullptr,
                                        /*with_key=*/false));
    if (bplan->path == core::ExecutionPath::ParallelTriSolve) {
      core::TriSolvePlan bflat = *bplan;
      bflat.agg = parallel::AggregateSchedule{};
      core::TriSolvePlan bchains = *bplan;
      bchains.agg = parallel::coarsen_schedule_columns(
          lb, bplan->schedule, parallel::CoarsenOptions{true, false});
      const std::vector<value_t> bb =
          random_vec(static_cast<std::size_t>(lb.cols()));
      std::vector<value_t> bx(bb.size());
      core::TriSolveExecutor bserial(bplan, lb);
      const double bserial_seconds = bench::median_seconds(
          [&] {
            std::memcpy(bx.data(), bb.data(), bx.size() * sizeof(value_t));
            bserial.solve(bx);
          },
          reps);
      rows.push_back({"serial-pruned (banded)", lb.cols(), 1, bserial_seconds,
                      1.0});
      const auto btime = [&](const core::TriSolvePlan& p) {
        return bench::median_seconds(
            [&] {
              std::memcpy(bx.data(), bb.data(), bx.size() * sizeof(value_t));
              parallel::parallel_trisolve(lb, p, bx, ws);
            },
            reps);
      };
      const double bflat_seconds = btime(bflat);
      rows.push_back({"flat (banded tiny-lvl)", lb.cols(), 1, bflat_seconds,
                      bserial_seconds / bflat_seconds});
      const double bchain_seconds = btime(bchains);
      rows.push_back({"chain-fused (banded)", lb.cols(), 1, bchain_seconds,
                      bserial_seconds / bchain_seconds});
      const double bcoarse_seconds = btime(*bplan);
      rows.push_back({"chains+bundles (banded)", lb.cols(), 1, bcoarse_seconds,
                      bserial_seconds / bcoarse_seconds});
    }
  }
  return rows;
}

void emit_json(const std::vector<KernelRow>& kernels,
               const std::vector<MultiRhsRow>& multi,
               const std::vector<BatchRow>& batches,
               const std::vector<ParTriRow>& partri) {
  std::FILE* f = std::fopen("BENCH_kernels.json", "w");
  if (f == nullptr) {
    std::printf("!! could not open BENCH_kernels.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"kernels\": [\n");
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const KernelRow& r = kernels[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"m\": %d, \"n\": %d, \"k\": %d, "
                 "\"ref_gflops\": %.3f, \"blocked_gflops\": %.3f, "
                 "\"speedup\": %.3f}%s\n",
                 r.name.c_str(), r.m, r.n, r.k, r.ref_gflops(),
                 r.new_gflops(), r.speedup(),
                 i + 1 < kernels.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"multi_rhs\": [\n");
  for (std::size_t i = 0; i < multi.size(); ++i) {
    const MultiRhsRow& r = multi[i];
    std::fprintf(f,
                 "    {\"n\": %d, \"nrhs\": %d, \"gflops\": %.3f, "
                 "\"per_rhs_speedup_vs_trsv\": %.3f}%s\n",
                 r.n, r.nrhs, r.gflops, r.per_rhs_vs_trsv,
                 i + 1 < multi.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"solve_batch\": [\n");
  for (std::size_t i = 0; i < batches.size(); ++i) {
    const BatchRow& r = batches[i];
    std::fprintf(f,
                 "    {\"path\": \"%s\", \"n\": %d, \"nrhs\": %d, "
                 "\"looped_seconds\": %.6f, \"blocked_seconds\": %.6f, "
                 "\"speedup\": %.3f}%s\n",
                 r.path.c_str(), r.n, r.nrhs, r.looped_seconds,
                 r.blocked_seconds, r.speedup(),
                 i + 1 < batches.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"parallel_trisolve\": [\n");
  for (std::size_t i = 0; i < partri.size(); ++i) {
    const ParTriRow& r = partri[i];
    std::fprintf(f,
                 "    {\"scheme\": \"%s\", \"n\": %d, \"nrhs\": %d, "
                 "\"seconds\": %.6f, \"per_rhs_speedup_vs_serial\": %.3f}%s\n",
                 r.scheme.c_str(), r.n, r.nrhs, r.seconds,
                 r.per_rhs_vs_serial, i + 1 < partri.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_kernels.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--smoke") smoke = true;

  std::printf("== dense kernels: register-blocked vs _ref scalar ==\n");
  std::printf("%-24s %5s %5s %5s   %9s %9s %8s\n", "kernel", "m", "n", "k",
              "ref GF/s", "new GF/s", "speedup");
  bench::print_rule(78);
  std::vector<KernelRow> kernels;
  // The supernodal gemm-update shape (acceptance criterion) first.
  kernels.push_back(bench_gemm(64, 16, 16, smoke));
  if (!smoke) {
    kernels.push_back(bench_gemm(16, 8, 8, smoke));
    kernels.push_back(bench_gemm(32, 16, 8, smoke));
    kernels.push_back(bench_gemm(64, 32, 16, smoke));
    kernels.push_back(bench_gemm(128, 32, 32, smoke));
    kernels.push_back(bench_gemm(192, 64, 32, smoke));
  } else {
    kernels.push_back(bench_gemm(128, 32, 32, smoke));
  }
  kernels.push_back(bench_syrk(64, 16, smoke));
  kernels.push_back(bench_potrf(smoke ? 32 : 64, smoke));
  if (!smoke) kernels.push_back(bench_potrf(128, smoke));
  kernels.push_back(bench_trsm(64, 16, smoke));
  if (!smoke) kernels.push_back(bench_trsm(128, 32, smoke));
  kernels.push_back(bench_gemv(64, 16, smoke));
  for (const KernelRow& r : kernels)
    std::printf("%-24s %5d %5d %5d   %9.2f %9.2f %7.2fx\n", r.name.c_str(),
                r.m, r.n, r.k, r.ref_gflops(), r.new_gflops(), r.speedup());

  std::printf("\n== multi-RHS kernel scaling (trsm_lower_multi, n=64) ==\n");
  std::printf("%5s %6s   %9s %22s\n", "n", "nrhs", "GF/s", "per-RHS vs trsv");
  bench::print_rule(50);
  const index_t tn = 64;
  std::vector<value_t> tl = random_spd_dense(tn);
  blas::potrf_lower(tn, tl.data(), tn);
  const std::vector<value_t> tx0 = random_vec(static_cast<std::size_t>(tn));
  std::vector<value_t> tx(tx0.size());
  const double trsv_seconds = kernel_seconds(
      [&] {
        // Restore before each solve: repeated in-place L^{-1} application
        // would walk the values into denormal/inf territory and poison the
        // timing.
        std::memcpy(tx.data(), tx0.data(), tx.size() * sizeof(value_t));
        blas::trsv_lower(tn, tl.data(), tn, tx.data());
      },
      inner_iters(static_cast<double>(tn) * tn, smoke), smoke ? 3 : 5);
  std::vector<MultiRhsRow> multi;
  for (const index_t nrhs : {1, 4, 8, 16, 32})
    multi.push_back(bench_trsm_multi(tn, nrhs, trsv_seconds, smoke));
  for (const MultiRhsRow& r : multi)
    std::printf("%5d %6d   %9.2f %21.2fx\n", r.n, r.nrhs, r.gflops,
                r.per_rhs_vs_trsv);

  std::printf("\n== end-to-end solve_batch: blocked vs looped ==\n");
  std::printf("%-32s %7s %6s   %10s %10s %8s\n", "path", "n", "nrhs",
              "looped s", "blocked s", "speedup");
  bench::print_rule(82);
  std::vector<BatchRow> batches;
  const index_t g = smoke ? 60 : 110;
  const CscMatrix mesh = gen::grid2d_laplacian(g, g);
  batches.push_back(bench_solver_batch(mesh, "cholesky", 64, smoke));
  if (!smoke) {
    batches.push_back(bench_solver_batch(mesh, "cholesky", 16, smoke));
    const CscMatrix blocks = gen::block_structural(26, 26, 4, 7);
    batches.push_back(bench_solver_batch(blocks, "cholesky", 64, smoke));
  }
  batches.push_back(bench_trisolve_batch(mesh, 64, smoke));
  for (const BatchRow& r : batches)
    std::printf("%-32s %7d %6d   %10.5f %10.5f %7.2fx\n", r.path.c_str(), r.n,
                r.nrhs, r.looped_seconds, r.blocked_seconds, r.speedup());

  std::printf(
      "\n== level-set parallel trisolve: flat vs chain-fused vs "
      "chains+bundles ==\n");
  const std::vector<ParTriRow> partri = bench_parallel_trisolve(smoke);
  if (partri.empty()) {
    std::printf("(skipped: built without OpenMP — no parallel plan)\n");
  } else {
    std::printf("%-26s %7s %6s   %10s %22s\n", "scheme", "n", "nrhs",
                "seconds", "per-RHS vs serial");
    bench::print_rule(78);
    for (const ParTriRow& r : partri)
      std::printf("%-26s %7d %6d   %10.6f %21.2fx\n", r.scheme.c_str(), r.n,
                  r.nrhs, r.seconds, r.per_rhs_vs_serial);
  }

  emit_json(kernels, multi, batches, partri);
  return 0;
}
