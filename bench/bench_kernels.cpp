// google-benchmark microbenchmarks for the mini-BLAS: the crossover
// between the "Sympiler-generated" unrolled small kernels and the generic
// blocked routines — the mechanism behind the paper's observation that
// BLAS libraries are not well-optimized for the small blocks VS-Block
// produces (section 4.2, citing Shin et al.).
#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "blas/kernels.h"

namespace {

using sympiler::index_t;
using sympiler::value_t;

std::vector<value_t> spd(index_t n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<value_t> dist(-1.0, 1.0);
  std::vector<value_t> b(static_cast<std::size_t>(n) * n);
  for (auto& v : b) v = dist(rng);
  std::vector<value_t> a(static_cast<std::size_t>(n) * n, 0.0);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) {
      value_t s = 0.0;
      for (index_t k = 0; k < n; ++k) s += b[i + k * n] * b[j + k * n];
      a[i + j * n] = s + (i == j ? n : 0.0);
    }
  return a;
}

void BM_PotrfGeneric(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const std::vector<value_t> a = spd(n, 1);
  std::vector<value_t> l(a.size());
  for (auto _ : state) {
    l = a;
    sympiler::blas::potrf_lower(n, l.data(), n);
    benchmark::DoNotOptimize(l.data());
  }
}
BENCHMARK(BM_PotrfGeneric)->DenseRange(2, 8, 2)->Arg(16)->Arg(64);

void BM_PotrfSmallDispatch(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const std::vector<value_t> a = spd(n, 1);
  std::vector<value_t> l(a.size());
  for (auto _ : state) {
    l = a;
    sympiler::blas::potrf_lower_small(n, l.data(), n);
    benchmark::DoNotOptimize(l.data());
  }
}
BENCHMARK(BM_PotrfSmallDispatch)->DenseRange(2, 8, 2);

void BM_TrsvGeneric(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  std::vector<value_t> l = spd(n, 2);
  sympiler::blas::potrf_lower(n, l.data(), n);
  std::vector<value_t> x(static_cast<std::size_t>(n), 1.0);
  for (auto _ : state) {
    sympiler::blas::trsv_lower(n, l.data(), n, x.data());
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_TrsvGeneric)->DenseRange(2, 8, 2)->Arg(32);

void BM_TrsvSmallDispatch(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  std::vector<value_t> l = spd(n, 2);
  sympiler::blas::potrf_lower(n, l.data(), n);
  std::vector<value_t> x(static_cast<std::size_t>(n), 1.0);
  for (auto _ : state) {
    sympiler::blas::trsv_lower_small(n, l.data(), n, x.data());
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_TrsvSmallDispatch)->DenseRange(2, 8, 2);

void BM_GemmNt(benchmark::State& state) {
  const auto m = static_cast<index_t>(state.range(0));
  const auto k = static_cast<index_t>(state.range(1));
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<value_t> dist(-1.0, 1.0);
  std::vector<value_t> a(static_cast<std::size_t>(m) * k);
  for (auto& v : a) v = dist(rng);
  std::vector<value_t> c(static_cast<std::size_t>(m) * m, 0.0);
  for (auto _ : state) {
    sympiler::blas::gemm_nt_minus(m, m, k, a.data(), m, a.data(), m, c.data(),
                                  m);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * static_cast<int64_t>(m) *
                          m * k);
}
BENCHMARK(BM_GemmNt)->Args({8, 8})->Args({32, 8})->Args({64, 32})->Args({128, 64});

}  // namespace

BENCHMARK_MAIN();
