// Section 4.3 reproduction: symbolic-inspection and code-generation cost.
// Paper claims: trisolve codegen+compilation costs 6-197x one numeric
// solve (amortized across the thousands of solves of an iterative
// method); Cholesky codegen+compilation adds at most 0.3x the numeric
// factorization. The JIT measurement runs on the problems whose factors
// are small enough to bake economically (the paper's compile costs grow
// the same way).
//
// Inspection now enters through the api::Solver facade: the "cold"
// columns pay the inspector (cache miss), the "warm" columns re-request
// the same pattern and are served from the SymbolicCache — the amortized
// regime every repeated-pattern workload lives in.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "api/solver.h"
#include "bench/common.h"
#include "core/codegen.h"
#include "core/jit.h"
#include "gen/generators.h"
#include "gen/suite.h"
#include "util/timer.h"

using namespace sympiler;

int main() {
  std::printf("Section 4.3: inspection and code generation overheads\n");
  bench::print_rule(132);
  std::printf("%2s %-14s | %11s %11s | %11s %11s | %11s %11s %11s | %12s\n",
              "id", "name", "ts-cold(s)", "ts-warm(s)", "ch-cold(s)",
              "ch-warm(s)", "gen(s)", "compile(s)", "numeric(s)",
              "(gen+cc)/num");
  bench::print_rule(132);

  const bool jit = core::JitModule::compiler_available();
  for (const auto& spec : gen::suite()) {
    const CscMatrix a = spec.make();

    // Cold Cholesky factor through the facade (fresh context), then a
    // same-pattern refactor to isolate the numeric-only time: the symbolic
    // columns below are factor-total minus that numeric pass.
    auto context = std::make_shared<api::SymbolicContext>();
    api::Solver chol({}, context);
    Timer tc;
    chol.factor(a);
    const double t_ch_cold_total = tc.seconds();
    Timer tn;
    chol.factor(a);
    const double t_ch_numeric = tn.seconds();
    const double t_ch_cold =
        std::max(t_ch_cold_total - t_ch_numeric, 0.0);
    const CscMatrix l = chol.factor_csc();

    // Warm: a second solver over the same pattern — symbolic is a lookup.
    api::Solver chol_warm({}, context);
    Timer tcw;
    chol_warm.factor(a);
    const double t_ch_warm =
        std::max(tcw.seconds() - t_ch_numeric, 0.0);

    const index_t n = l.cols();
    const std::vector<value_t> b =
        gen::rhs_from_column(a, (2 * n) / 3, 4000 + spec.id);
    std::vector<index_t> beta;
    for (index_t i = 0; i < n; ++i)
      if (b[i] != 0.0) beta.push_back(i);

    // Trisolve inspection, cold then warm (same L and injection pattern).
    Timer ti;
    api::TriangularSolver exec(l, beta, {}, context);
    const double t_ts_cold = ti.seconds();
    Timer tiw;
    api::TriangularSolver exec_warm(l, beta, {}, context);
    const double t_ts_warm = tiw.seconds();

    // Numeric solve time (what the overhead amortizes against).
    std::vector<value_t> x(static_cast<std::size_t>(n));
    const double t_numeric = bench::bench_seconds([&] {
      std::copy(b.begin(), b.end(), x.begin());
      exec.solve(x);
    });

    // Trisolve code generation + compilation (paper: 6-197x numeric).
    double t_gen = 0.0, t_compile = 0.0;
    if (jit) {
      Timer tg;
      const core::GeneratedKernel k = core::generate_trisolve(l, beta, {});
      t_gen = tg.seconds();
      const core::JitModule mod = core::JitModule::compile(k.source, k.symbol);
      t_compile = mod.compile_seconds();
    }
    std::printf(
        "%2d %-14s | %11.4f %11.6f | %11.4f %11.6f | %11.4f %11.4f %11.6f | "
        "%11.0fx\n",
        spec.id, spec.paper_name.c_str(), t_ts_cold, t_ts_warm, t_ch_cold,
        t_ch_warm, t_gen, t_compile, t_numeric,
        t_numeric > 0 ? (t_gen + t_compile) / t_numeric : 0.0);
    std::fflush(stdout);
  }
  bench::print_rule(132);
  std::printf(
      "paper: trisolve codegen+compile costs 6-197x one numeric solve and "
      "amortizes over repeated solves;%s\n",
      jit ? "" : " (JIT skipped: no host compiler)");
  std::printf(
      "note: ch-cold/ch-warm are symbolic-only (factor total minus a "
      "numeric-only refactor); the warm path runs no inspection — its cost "
      "is key hashing, the cache hit, and executor setup (allocation).\n");
  return 0;
}
