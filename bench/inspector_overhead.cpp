// Section 4.3 reproduction: symbolic-inspection and code-generation cost.
// Paper claims: trisolve codegen+compilation costs 6-197x one numeric
// solve (amortized across the thousands of solves of an iterative
// method); Cholesky codegen+compilation adds at most 0.3x the numeric
// factorization. The JIT measurement runs on the problems whose factors
// are small enough to bake economically (the paper's compile costs grow
// the same way).
#include <cstdio>

#include "bench/common.h"
#include "core/cholesky_executor.h"
#include "core/codegen.h"
#include "core/jit.h"
#include "core/trisolve_executor.h"
#include "gen/generators.h"
#include "gen/suite.h"
#include "util/timer.h"

using namespace sympiler;

int main() {
  std::printf("Section 4.3: inspection and code generation overheads\n");
  bench::print_rule(120);
  std::printf("%2s %-14s | %11s %11s | %11s %11s %11s | %12s\n", "id", "name",
              "ts-insp(s)", "ch-insp(s)", "gen(s)", "compile(s)",
              "numeric(s)", "(gen+cc)/num");
  bench::print_rule(120);

  const bool jit = core::JitModule::compiler_available();
  for (const auto& spec : gen::suite()) {
    const CscMatrix a = spec.make();
    core::CholeskyExecutor chol(a);
    chol.factorize(a);
    const CscMatrix l = chol.factor_csc();
    const index_t n = l.cols();
    const std::vector<value_t> b =
        gen::rhs_from_column(a, (2 * n) / 3, 4000 + spec.id);
    std::vector<index_t> beta;
    for (index_t i = 0; i < n; ++i)
      if (b[i] != 0.0) beta.push_back(i);

    // Inspection costs (one-off, per pattern).
    Timer ti;
    core::TriSolveExecutor exec(l, beta, {});
    const double t_ts_inspect = ti.seconds();
    Timer tc;
    core::CholeskyExecutor chol_probe(a, {});
    const double t_ch_inspect = tc.seconds();

    // Numeric solve time (what the overhead amortizes against).
    std::vector<value_t> x(static_cast<std::size_t>(n));
    const double t_numeric = bench::bench_seconds([&] {
      std::copy(b.begin(), b.end(), x.begin());
      exec.solve(x);
    });

    // Trisolve code generation + compilation (paper: 6-197x numeric).
    double t_gen = 0.0, t_compile = 0.0;
    if (jit) {
      Timer tg;
      const core::GeneratedKernel k = core::generate_trisolve(l, beta, {});
      t_gen = tg.seconds();
      const core::JitModule mod = core::JitModule::compile(k.source, k.symbol);
      t_compile = mod.compile_seconds();
    }
    std::printf("%2d %-14s | %11.4f %11.4f | %11.4f %11.4f %11.6f | %11.0fx\n",
                spec.id, spec.paper_name.c_str(), t_ts_inspect, t_ch_inspect,
                t_gen, t_compile, t_numeric,
                t_numeric > 0 ? (t_gen + t_compile) / t_numeric : 0.0);
    std::fflush(stdout);
  }
  bench::print_rule(120);
  std::printf(
      "paper: trisolve codegen+compile costs 6-197x one numeric solve and "
      "amortizes over repeated solves;%s\n",
      jit ? "" : " (JIT skipped: no host compiler)");
  return 0;
}
