// Figure 9 reproduction: Cholesky symbolic + numeric time for Sympiler,
// CHOLMOD-like, and Eigen-like, normalized to Eigen's accumulated
// symbolic+numeric time (lower is better).
//
// Shape claim: Sympiler's accumulated time beats both libraries on nearly
// all matrices — decoupling moves work to the symbolic phase *and* makes
// the numeric phase faster than the libraries' numeric phases, which
// retain the A-transpose and reach bookkeeping.
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "core/cholesky_executor.h"
#include "gen/suite.h"
#include "solvers/simplicial.h"
#include "solvers/supernodal.h"
#include "util/stats.h"

using namespace sympiler;

int main() {
  std::printf(
      "Figure 9: Cholesky symbolic+numeric normalized to Eigen (lower is "
      "better)\n");
  bench::print_rule(126);
  std::printf("%2s %-14s | %9s %9s | %9s %9s | %9s %9s | %9s %9s\n", "id",
              "name", "Eig sym", "Eig num", "Chl sym", "Chl num", "Sym sym",
              "Sym num", "Chl/Eig", "Sym/Eig");
  bench::print_rule(126);

  std::vector<double> sym_ratio, chol_ratio;
  for (const auto& spec : gen::suite()) {
    const CscMatrix a = spec.make();

    const double t_eig_sym = bench::bench_seconds([&] {
      solvers::SimplicialCholesky probe(a);
    });
    solvers::SimplicialCholesky eigen_like(a);
    const double t_eig_num =
        bench::bench_seconds([&] { eigen_like.factorize(a); });

    const double t_chl_sym = bench::bench_seconds([&] {
      solvers::SupernodalCholesky probe(a);
    });
    solvers::SupernodalCholesky cholmod_like(a);
    const double t_chl_num =
        bench::bench_seconds([&] { cholmod_like.factorize(a); });

    const double t_sym_sym = bench::bench_seconds([&] {
      core::CholeskyExecutor probe(a, {});
    });
    core::CholeskyExecutor sympiler(a, {});
    const double t_sym_num =
        bench::bench_seconds([&] { sympiler.factorize(a); });

    const double eig_total = t_eig_sym + t_eig_num;
    const double r_chl = (t_chl_sym + t_chl_num) / eig_total;
    const double r_sym = (t_sym_sym + t_sym_num) / eig_total;
    chol_ratio.push_back(r_chl);
    sym_ratio.push_back(r_sym);
    std::printf(
        "%2d %-14s | %9.4f %9.4f | %9.4f %9.4f | %9.4f %9.4f | %9.2f "
        "%9.2f\n",
        spec.id, spec.paper_name.c_str(), t_eig_sym, t_eig_num, t_chl_sym,
        t_chl_num, t_sym_sym, t_sym_num, r_chl, r_sym);
    std::fflush(stdout);
  }
  bench::print_rule(126);
  std::printf(
      "geomean accumulated-time ratios: CHOLMOD-like %.2fx, Sympiler %.2fx "
      "of Eigen-like (paper: Sympiler below both on nearly all matrices)\n",
      geomean(chol_ratio), geomean(sym_ratio));
  return 0;
}
