// Shared benchmark harness. The figure/table reproductions time with the
// paper's methodology (median of repeated runs, section 4.1: "each
// experiment is executed 5 times and the median is reported"); the
// kernel-level microbenchmarks (bench_kernels.cpp) use google-benchmark.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "util/stats.h"
#include "util/timer.h"

namespace sympiler::bench {

/// Median wall-clock seconds of `reps` runs of fn (after one warm-up).
inline double median_seconds(const std::function<void()>& fn, int reps = 5) {
  fn();  // warm-up
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    samples.push_back(t.seconds());
  }
  return median(samples);
}

/// Adaptive repetition count: cheap runs get the paper's 5 reps, runs
/// beyond ~1s get 3 to keep the suite under CI budgets.
inline int reps_for(double approx_seconds) {
  return approx_seconds > 1.0 ? 3 : 5;
}

/// One probe run, then median with adaptive reps.
inline double bench_seconds(const std::function<void()>& fn) {
  Timer probe;
  fn();
  const double approx = probe.seconds();
  return median_seconds(fn, reps_for(approx));
}

inline void print_rule(int width = 110) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

}  // namespace sympiler::bench
