// Table 2 reproduction: the matrix suite. Prints the paper's columns
// (problem id, name, n, nnz(A)) for both the paper's SuiteSparse matrices
// and our synthetic analogues, extended with the structural quantities the
// transformations key on: nnz(L), supernode count, the VS-Block
// profitability metric, and the average column count.
#include <cstdio>

#include "bench/common.h"
#include "core/inspector.h"
#include "gen/suite.h"

using namespace sympiler;

int main() {
  std::printf("Table 2: matrix suite (paper values vs synthetic analogues)\n");
  bench::print_rule(132);
  std::printf(
      "%2s %-14s %27s | %8s %9s %11s %8s %9s %7s %5s  %s\n", "id", "name",
      "paper n(1e3)/nnz(1e6)", "n", "nnz(A)", "nnz(L)", "nsuper",
      "vsb-size", "avgCC", "VSB?", "generator");
  bench::print_rule(132);
  for (const auto& spec : gen::suite()) {
    const CscMatrix a = spec.make();
    const core::CholeskySets sets = core::inspect_cholesky(a);
    std::printf(
        "%2d %-14s %15d / %-9.3f | %8d %9d %11lld %8d %9.1f %7.1f %5s  %s\n",
        spec.id, spec.paper_name.c_str(), spec.paper_n_thousands,
        spec.paper_nnz_millions, a.cols(), a.nnz(),
        static_cast<long long>(sets.sym.fill_nnz), sets.blocks.count(),
        sets.avg_supernode_size, sets.avg_colcount,
        sets.vs_block_profitable ? "yes" : "no", spec.generator.c_str());
    std::fflush(stdout);
  }
  bench::print_rule(132);
  std::printf(
      "Sizes are scaled to laptop/CI scale (see DESIGN.md section 3); the\n"
      "suite spans the same structural regimes as the paper's selection.\n");
  return 0;
}
