// Ablation of the design choices DESIGN.md section 6 calls out:
//  1. the VS-Block profitability threshold (paper hand-tunes to 160),
//  2. the column-count switch between specialized kernels and the generic
//     blocked ("BLAS") path,
//  3. the peel column-count threshold (paper Figure 1e uses 2),
//  4. the supernode width cap,
//  5. relaxed amalgamation (off in the paper).
// Three representative regimes: block-structural ND (cbuckle-like), strip
// natural (Dubcova2-like), large 2-D ND mesh (ecology2-like).
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "core/cholesky_executor.h"
#include "core/trisolve_executor.h"
#include "gen/generators.h"
#include "gen/suite.h"

using namespace sympiler;

namespace {

void cholesky_row(const char* label, const CscMatrix& a,
                  const core::SympilerOptions& opt) {
  core::CholeskyExecutor exec(a, opt);
  const double t = bench::bench_seconds([&] { exec.factorize(a); });
  std::printf("  %-38s %10.4fs  %8.3f GF/s  vsb=%-3s kernels=%s\n", label, t,
              exec.flops() / t * 1e-9, exec.vs_block_applied() ? "yes" : "no",
              exec.specialized_kernels() ? "small" : "blocked");
  std::fflush(stdout);
}

}  // namespace

int main() {
  std::printf("Ablation: Sympiler thresholds (Cholesky numeric phase)\n");
  for (const int id : {1, 5, 10}) {
    const auto& spec = gen::suite_problem(id);
    const CscMatrix a = spec.make();
    std::printf("\nproblem %d (%s), n=%d\n", id, spec.paper_name.c_str(),
                a.cols());
    bench::print_rule(90);

    core::SympilerOptions opt;
    cholesky_row("defaults", a, opt);

    opt = {};
    opt.vsblock_min_avg_size = 0.0;
    opt.vsblock_min_avg_width = 0.0;
    cholesky_row("VS-Block forced ON", a, opt);
    opt.vsblock_min_avg_size = 1e18;
    cholesky_row("VS-Block forced OFF (VI-Prune only)", a, opt);

    opt = {};
    opt.blas_switch_colcount = 1e18;
    cholesky_row("always specialized kernels", a, opt);
    opt.blas_switch_colcount = 0.0;
    cholesky_row("always generic blocked kernels", a, opt);

    opt = {};
    opt.max_supernode_width = 16;
    cholesky_row("width cap 16", a, opt);
    opt.max_supernode_width = 1024;
    cholesky_row("width cap 1024", a, opt);

    opt = {};
    opt.relax_supernodes = true;
    opt.relax_ratio = 0.3;
    cholesky_row("relaxed amalgamation (ratio 0.3)", a, opt);
  }

  std::printf("\nAblation: peel threshold (trisolve numeric phase)\n");
  for (const int id : {1, 10}) {
    const auto& spec = gen::suite_problem(id);
    const CscMatrix a = spec.make();
    core::CholeskyExecutor chol(a);
    chol.factorize(a);
    const CscMatrix l = chol.factor_csc();
    const index_t n = l.cols();
    const std::vector<value_t> b =
        gen::rhs_from_column(a, (2 * n) / 3, 5000 + id);
    std::vector<index_t> beta;
    for (index_t i = 0; i < n; ++i)
      if (b[i] != 0.0) beta.push_back(i);
    std::printf("\nproblem %d (%s)\n", id, spec.paper_name.c_str());
    bench::print_rule(60);
    for (const index_t peel : {0, 2, 8, 64}) {
      core::SympilerOptions opt;
      opt.peel_colcount = peel;
      core::TriSolveExecutor exec(l, beta, opt);
      std::vector<value_t> x(static_cast<std::size_t>(n));
      const double t = bench::bench_seconds([&] {
        std::copy(b.begin(), b.end(), x.begin());
        exec.solve(x);
      });
      std::printf("  peel_colcount=%-4d %12.6fs  %8.3f GF/s\n", peel, t,
                  exec.flops() / t * 1e-9);
      std::fflush(stdout);
    }
  }
  return 0;
}
