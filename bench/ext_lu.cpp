// Extension bench: Gilbert-Peierls LU (section 3.3 "other matrix
// methods"). Demonstrates the same decoupling win: the coupled flow
// (symbolic + numeric every factorization, what a library without pattern
// reuse does) vs Sympiler-style numeric-only refactorization with
// precomputed reach-sets.
#include <cstdio>

#include "bench/common.h"
#include "gen/suite.h"
#include "lu/lu.h"
#include "sparse/ops.h"
#include "util/timer.h"

using namespace sympiler;

int main() {
  std::printf(
      "Extension: Gilbert-Peierls LU, coupled (symbolic+numeric) vs "
      "decoupled (numeric only)\n");
  bench::print_rule(104);
  std::printf("%2s %-14s | %10s %10s | %12s %12s %9s\n", "id", "name",
              "nnz(L)", "nnz(U)", "coupled(s)", "decoupled(s)", "speedup");
  bench::print_rule(104);
  for (const int id : {1, 2, 5, 6, 8}) {
    const auto& spec = gen::suite_problem(id);
    const CscMatrix lower = spec.make();
    CscMatrix a = symmetric_full_from_lower(lower);
    for (index_t j = 0; j < a.cols(); ++j)
      for (index_t p = a.col_begin(j); p < a.col_end(j); ++p)
        if (a.rowind[p] < j) a.values[p] *= 0.75;  // unsymmetric values

    // Coupled: symbolic + numeric per factorization.
    const double t_coupled = bench::bench_seconds([&] {
      lu::LuFactor f(a);
      f.factorize(a);
    });
    // Decoupled: inspect once, refactorize repeatedly.
    lu::LuFactor f(a);
    const double t_numeric = bench::bench_seconds([&] { f.factorize(a); });

    std::printf("%2d %-14s | %10d %10d | %12.4f %12.4f %8.2fx\n", spec.id,
                spec.paper_name.c_str(), f.lower().nnz(), f.upper().nnz(),
                t_coupled, t_numeric, t_coupled / t_numeric);
    std::fflush(stdout);
  }
  bench::print_rule(104);
  return 0;
}
