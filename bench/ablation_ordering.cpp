// Ablation: fill-reducing ordering. The paper's libraries run on AMD
// orderings; offline we compare natural, reverse Cuthill-McKee, minimum
// degree, and the generators' built-in nested dissection on a 2-D mesh,
// reporting fill, flops, and Sympiler numeric factorization time.
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "core/cholesky_executor.h"
#include "gen/generators.h"
#include "order/rcm.h"
#include "sparse/ops.h"

using namespace sympiler;

namespace {

void row(const char* label, const CscMatrix& a_lower) {
  core::CholeskyExecutor exec(a_lower, {});
  const double t = bench::bench_seconds([&] { exec.factorize(a_lower); });
  std::printf("  %-18s nnz(L)=%10lld  flops=%10.3e  numeric=%9.4fs  vsb=%s\n",
              label, static_cast<long long>(exec.sets().sym.fill_nnz),
              exec.flops(), t, exec.vs_block_applied() ? "yes" : "no");
  std::fflush(stdout);
}

}  // namespace

int main() {
  std::printf("Ablation: fill-reducing ordering, grid2d 120x120 Laplacian\n");
  bench::print_rule(95);
  const CscMatrix natural =
      gen::grid2d_laplacian(120, 120, gen::GridOrder::Natural);
  row("natural", natural);
  const CscMatrix nd =
      gen::grid2d_laplacian(120, 120, gen::GridOrder::NestedDissection);
  row("nested dissection", nd);
  {
    const std::vector<index_t> perm = order::rcm(natural);
    row("RCM", permute_symmetric_lower(natural, perm));
  }
  {
    const std::vector<index_t> perm = order::minimum_degree(natural);
    row("minimum degree", permute_symmetric_lower(natural, perm));
  }
  bench::print_rule(95);
  std::printf(
      "expected shape: ND < MD < RCM < natural in fill; supernodal blocking "
      "profits most under ND\n");
  return 0;
}
