// Figure 6 reproduction: sparse triangular solve performance (GFLOP/s),
// Sympiler variants vs the Eigen-style library implementation.
//
// Paper claims to reproduce in shape:
//  * Sympiler (numeric) beats Eigen on every matrix; average speedup 1.49x.
//  * VS-Block is skipped where the participating supernodes are too small
//    (paper matrices 3,4,5,7), leaving VI-Prune-only bars.
//  * Low-level transformations (peeling, vectorization) add on top.
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "core/cholesky_executor.h"
#include "core/trisolve_executor.h"
#include "gen/generators.h"
#include "gen/suite.h"
#include "solvers/trisolve.h"
#include "util/stats.h"

using namespace sympiler;

int main() {
  std::printf(
      "Figure 6: triangular solve GFLOP/s (sparse RHS from a matrix "
      "column)\n");
  bench::print_rule(118);
  std::printf("%2s %-14s %9s | %8s %10s %10s %10s | %8s %5s\n", "id", "name",
              "|reach|", "Eigen", "VS-Block", "+VI-Prune", "+Low-Level",
              "speedup", "VSB?");
  bench::print_rule(118);

  std::vector<double> speedups;
  for (const auto& spec : gen::suite()) {
    const CscMatrix a = spec.make();
    core::CholeskyExecutor chol(a);
    chol.factorize(a);
    const CscMatrix l = chol.factor_csc();
    const index_t n = l.cols();
    // RHS with the sparsity of a matrix column (paper section 4.2), taken
    // from the last third so banded problems keep a bounded reach.
    const std::vector<value_t> b =
        gen::rhs_from_column(a, (2 * n) / 3, 1000 + spec.id);
    std::vector<index_t> beta;
    for (index_t i = 0; i < n; ++i)
      if (b[i] != 0.0) beta.push_back(i);

    auto opts = [](bool vs, bool vi, bool low) {
      core::SympilerOptions o;
      o.vs_block = vs;
      o.vi_prune = vi;
      o.low_level = low;
      return o;
    };
    core::TriSolveExecutor ex_vsb(l, beta, opts(true, false, false));
    core::TriSolveExecutor ex_vsb_vip(l, beta, opts(true, true, false));
    core::TriSolveExecutor ex_full(l, beta, opts(true, true, true));
    const double flops = ex_full.flops();

    std::vector<value_t> x(static_cast<std::size_t>(n));
    auto run = [&](auto&& solver) {
      return bench::bench_seconds([&] {
        std::copy(b.begin(), b.end(), x.begin());
        solver(x);
      });
    };
    const double t_eigen =
        run([&](std::span<value_t> v) { solvers::trisolve_library(l, v); });
    const double t_vsb =
        run([&](std::span<value_t> v) { ex_vsb.solve(v); });
    const double t_vip =
        run([&](std::span<value_t> v) { ex_vsb_vip.solve(v); });
    const double t_full =
        run([&](std::span<value_t> v) { ex_full.solve(v); });

    const double speedup = t_eigen / t_full;
    speedups.push_back(speedup);
    std::printf(
        "%2d %-14s %9zu | %8.3f %10.3f %10.3f %10.3f | %7.2fx %5s\n",
        spec.id, spec.paper_name.c_str(), beta.size() ? ex_full.sets().reach.size() : 0,
        flops / t_eigen * 1e-9, flops / t_vsb * 1e-9, flops / t_vip * 1e-9,
        flops / t_full * 1e-9, speedup,
        ex_full.vs_block_applied() ? "yes" : "no");
    std::fflush(stdout);
  }
  bench::print_rule(118);
  std::printf(
      "Sympiler(full) vs Eigen-style: geomean %.2fx (paper reports 1.49x "
      "average)\n",
      geomean(speedups));
  return 0;
}
