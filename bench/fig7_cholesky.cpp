// Figure 7 reproduction: Cholesky numeric-phase performance (GFLOP/s).
// Sympiler (VS-Block / +Low-Level, VI-Prune always in the baseline) vs the
// CHOLMOD-like supernodal library and the Eigen-like simplicial library.
//
// Shape claims: Sympiler >= CHOLMOD-like >= Eigen-like on supernode-rich
// matrices (paper: up to 2.4x over CHOLMOD, 6.3x over Eigen); Eigen
// competitive only on matrices with small supernodes; Sympiler's win over
// CHOLMOD is largest where supernodes are small (specialized small
// kernels + no symbolic residue in the numeric phase).
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "core/cholesky_executor.h"
#include "gen/suite.h"
#include "solvers/simplicial.h"
#include "solvers/supernodal.h"
#include "util/stats.h"

using namespace sympiler;

int main() {
  std::printf("Figure 7: Cholesky numeric GFLOP/s\n");
  bench::print_rule(120);
  std::printf("%2s %-14s | %9s %10s %10s %11s | %9s %9s\n", "id", "name",
              "Eigen", "CHOLMOD", "VS-Block", "+Low-Level", "vs Eigen",
              "vs CHOLMOD");
  bench::print_rule(120);

  std::vector<double> vs_eigen, vs_cholmod;
  for (const auto& spec : gen::suite()) {
    const CscMatrix a = spec.make();

    solvers::SimplicialCholesky eigen_like(a);
    solvers::SupernodalCholesky cholmod_like(a);
    core::SympilerOptions plain;
    plain.low_level = false;
    core::CholeskyExecutor sym_vsb(a, plain);
    core::CholeskyExecutor sym_full(a, {});
    const double flops = sym_full.flops();

    const double t_eigen =
        bench::bench_seconds([&] { eigen_like.factorize(a); });
    const double t_cholmod =
        bench::bench_seconds([&] { cholmod_like.factorize(a); });
    const double t_vsb = bench::bench_seconds([&] { sym_vsb.factorize(a); });
    const double t_full = bench::bench_seconds([&] { sym_full.factorize(a); });

    vs_eigen.push_back(t_eigen / t_full);
    vs_cholmod.push_back(t_cholmod / t_full);
    std::printf("%2d %-14s | %9.3f %10.3f %10.3f %11.3f | %8.2fx %8.2fx\n",
                spec.id, spec.paper_name.c_str(), flops / t_eigen * 1e-9,
                flops / t_cholmod * 1e-9, flops / t_vsb * 1e-9,
                flops / t_full * 1e-9, t_eigen / t_full,
                t_cholmod / t_full);
    std::fflush(stdout);
  }
  bench::print_rule(120);
  std::printf(
      "Sympiler(full) speedups: geomean %.2fx vs Eigen-like (paper: up to "
      "6.3x), %.2fx vs CHOLMOD-like (paper: up to 2.4x)\n",
      geomean(vs_eigen), geomean(vs_cholmod));
  return 0;
}
