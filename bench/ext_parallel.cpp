// Extension bench: level-set (wavefront) parallel executors — the paper's
// stated extension to shared memory (realized by the ParSy follow-on).
// Compares sequential executors against the OpenMP level-set versions.
#include <cstdio>
#include <vector>

#ifdef SYMPILER_HAS_OPENMP
#include <omp.h>
#endif

#include "bench/common.h"
#include "core/cholesky_executor.h"
#include "core/inspector.h"
#include "gen/suite.h"
#include "parallel/levelset.h"
#include "solvers/trisolve.h"

using namespace sympiler;

int main() {
#ifdef SYMPILER_HAS_OPENMP
  std::printf("Extension: level-set parallel executors (%d threads)\n",
              omp_get_max_threads());
#else
  std::printf("Extension: level-set executors (built without OpenMP)\n");
#endif
  bench::print_rule(116);
  std::printf("%2s %-14s | %8s %12s %12s %8s | %12s %12s %8s\n", "id", "name",
              "levels", "seq-tri(s)", "par-tri(s)", "speedup", "seq-chol(s)",
              "par-chol(s)", "speedup");
  bench::print_rule(116);

  for (const int id : {2, 8, 10, 11}) {
    const auto& spec = gen::suite_problem(id);
    const CscMatrix a = spec.make();
    core::SympilerOptions opt;
    opt.vsblock_min_avg_size = 0.0;
    opt.vsblock_min_avg_width = 0.0;  // supernodal path for all
    const core::CholeskySets sets = core::inspect_cholesky(a, opt);

    core::CholeskyExecutor exec(a, opt);
    const double t_seq_chol = bench::bench_seconds([&] { exec.factorize(a); });

    const parallel::LevelSchedule sn_sched =
        parallel::level_schedule_supernodes(sets.blocks, sets.sym.parent);
    std::vector<value_t> panels(
        static_cast<std::size_t>(sets.layout.total_values()));
    const double t_par_chol = bench::bench_seconds(
        [&] { parallel::parallel_cholesky(sets, sn_sched, a, panels); });

    const CscMatrix l = panels_to_csc(sets.layout, panels);
    const parallel::LevelSchedule col_sched =
        parallel::level_schedule_columns(l);
    const parallel::UpdateSlotMap col_umap = parallel::update_slots_columns(l);
    std::vector<value_t> terms(static_cast<std::size_t>(col_umap.slots()));
    const std::vector<value_t> b(static_cast<std::size_t>(l.cols()), 1.0);
    std::vector<value_t> x(b);
    const double t_seq_tri = bench::bench_seconds([&] {
      std::copy(b.begin(), b.end(), x.begin());
      solvers::trisolve_naive(l, x);
    });
    const double t_par_tri = bench::bench_seconds([&] {
      std::copy(b.begin(), b.end(), x.begin());
      parallel::parallel_trisolve(l, col_sched, col_umap, x, terms);
    });

    std::printf(
        "%2d %-14s | %8d %12.5f %12.5f %7.2fx | %12.4f %12.4f %7.2fx\n",
        spec.id, spec.paper_name.c_str(), col_sched.levels(), t_seq_tri,
        t_par_tri, t_seq_tri / t_par_tri, t_seq_chol, t_par_chol,
        t_seq_chol / t_par_chol);
    std::fflush(stdout);
  }
  bench::print_rule(116);
  std::printf(
      "note: the wavefront trisolve pays barriers + slot traffic "
      "(level-private, deterministic — no atomics); it wins only when "
      "levels are wide relative to the core count.\n");
  return 0;
}
