// Section 1.1 reproduction: the motivating comparison on triangular solve.
// Paper claims: Sympiler-generated code is 8.4x-19x (avg 13.6x) faster
// than the naive forward solve (Figure 1b) and 1.2x-1.7x (avg 1.3x)
// faster than the guarded library loop (Figure 1c).
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "core/cholesky_executor.h"
#include "core/trisolve_executor.h"
#include "gen/generators.h"
#include "gen/suite.h"
#include "solvers/trisolve.h"
#include "util/stats.h"

using namespace sympiler;

int main() {
  std::printf(
      "Section 1.1: Sympiler trisolve vs naive (Fig 1b) and library (Fig "
      "1c)\n");
  bench::print_rule(100);
  std::printf("%2s %-14s %9s | %10s %10s %10s | %9s %9s\n", "id", "name",
              "|reach|", "naive(s)", "library(s)", "sympiler(s)", "vs naive",
              "vs lib");
  bench::print_rule(100);

  std::vector<double> vs_naive, vs_lib;
  for (const auto& spec : gen::suite()) {
    const CscMatrix a = spec.make();
    core::CholeskyExecutor chol(a);
    chol.factorize(a);
    const CscMatrix l = chol.factor_csc();
    const index_t n = l.cols();
    const std::vector<value_t> b =
        gen::rhs_from_column(a, (3 * n) / 4, 3000 + spec.id);
    std::vector<index_t> beta;
    for (index_t i = 0; i < n; ++i)
      if (b[i] != 0.0) beta.push_back(i);
    core::TriSolveExecutor exec(l, beta, {});

    std::vector<value_t> x(static_cast<std::size_t>(n));
    auto run = [&](auto&& solver) {
      return bench::bench_seconds([&] {
        std::copy(b.begin(), b.end(), x.begin());
        solver(x);
      });
    };
    const double t_naive =
        run([&](std::span<value_t> v) { solvers::trisolve_naive(l, v); });
    const double t_lib =
        run([&](std::span<value_t> v) { solvers::trisolve_library(l, v); });
    const double t_sym = run([&](std::span<value_t> v) { exec.solve(v); });

    vs_naive.push_back(t_naive / t_sym);
    vs_lib.push_back(t_lib / t_sym);
    std::printf("%2d %-14s %9zu | %10.6f %10.6f %10.6f | %8.1fx %8.2fx\n",
                spec.id, spec.paper_name.c_str(), exec.sets().reach.size(),
                t_naive, t_lib, t_sym, t_naive / t_sym, t_lib / t_sym);
    std::fflush(stdout);
  }
  bench::print_rule(100);
  std::printf(
      "geomean speedups: %.1fx vs naive (paper avg: 13.6x), %.2fx vs "
      "library (paper avg: 1.3x)\n",
      geomean(vs_naive), geomean(vs_lib));
  return 0;
}
