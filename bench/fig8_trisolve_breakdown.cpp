// Figure 8 reproduction: triangular-solve symbolic + numeric time,
// normalized to the Eigen-style solver's runtime (which has no separable
// symbolic phase — it is the coupled Figure 1c loop).
//
// Shape claim: even including the one-off symbolic inspection, Sympiler's
// accumulated time stays close to a single Eigen solve (paper: 1.27x on
// average), and the symbolic cost amortizes after a handful of solves.
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "core/cholesky_executor.h"
#include "core/trisolve_executor.h"
#include "gen/generators.h"
#include "gen/suite.h"
#include "solvers/trisolve.h"
#include "util/stats.h"

using namespace sympiler;

int main() {
  std::printf(
      "Figure 8: trisolve time normalized to Eigen (symbolic + numeric; "
      "lower is better)\n");
  bench::print_rule(110);
  std::printf("%2s %-14s | %11s %11s %11s | %9s %9s %11s\n", "id", "name",
              "Eigen(s)", "Sym sym(s)", "Sym num(s)", "num/Eig",
              "(s+n)/Eig", "amortize@");
  bench::print_rule(110);

  std::vector<double> accumulated;
  for (const auto& spec : gen::suite()) {
    const CscMatrix a = spec.make();
    core::CholeskyExecutor chol(a);
    chol.factorize(a);
    const CscMatrix l = chol.factor_csc();
    const index_t n = l.cols();
    const std::vector<value_t> b =
        gen::rhs_from_column(a, (2 * n) / 3, 2000 + spec.id);
    std::vector<index_t> beta;
    for (index_t i = 0; i < n; ++i)
      if (b[i] != 0.0) beta.push_back(i);

    // Symbolic: the trisolve inspection (reach DFS + prune/block set
    // assembly). The block-set of L is a byproduct of the factorization
    // inspector that produced L, so it is passed in rather than re-derived
    // (section 4.3 accounts the trisolve inspector as reach-proportional).
    const SupernodePartition& blocks = chol.sets().blocks;
    const double t_symbolic = bench::bench_seconds(
        [&] { core::TriSolveExecutor probe(l, beta, {}, &blocks); });
    core::TriSolveExecutor exec(l, beta, {}, &blocks);

    std::vector<value_t> x(static_cast<std::size_t>(n));
    const double t_numeric = bench::bench_seconds([&] {
      std::copy(b.begin(), b.end(), x.begin());
      exec.solve(x);
    });
    const double t_eigen = bench::bench_seconds([&] {
      std::copy(b.begin(), b.end(), x.begin());
      solvers::trisolve_library(l, x);
    });

    const double ratio = (t_symbolic + t_numeric) / t_eigen;
    accumulated.push_back(ratio);
    // Solves needed before Sympiler's total time beats Eigen's.
    const double gain = t_eigen - t_numeric;
    const double amortize = gain > 0 ? t_symbolic / gain : -1.0;
    std::printf("%2d %-14s | %11.6f %11.6f %11.6f | %9.2f %9.2f %11.0f\n",
                spec.id, spec.paper_name.c_str(), t_eigen, t_symbolic,
                t_numeric, t_numeric / t_eigen, ratio, amortize);
    std::fflush(stdout);
  }
  bench::print_rule(110);
  std::printf(
      "geomean (symbolic+numeric)/Eigen = %.2fx (paper: 1.27x average; "
      "amortize@ = solves until Sympiler wins outright)\n",
      geomean(accumulated));
  return 0;
}
