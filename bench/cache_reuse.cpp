// Cache-reuse benchmark: the repeated-pattern regime the plan cache
// exists for. A service re-solving systems whose sparsity recurs (Newton
// steps, transients, batched scenarios) pays the Planner once per
// pattern; every later request finds the plan resident and runs the
// numeric phase only.
//
// For each suite problem this driver measures:
//   sym-cold : symbolic planning on a cold cache (the miss path),
//   sym-warm : the same request served from the cache (the hit path) —
//              this is the "inspector time" a warm solve actually pays,
//   numeric  : one numeric refactorization (what reuse amortizes against),
// and reports the cache hit/miss/eviction counters after a simulated
// steady-state of repeated-pattern factors.
//
// A second section measures warm-lookup throughput under thread
// contention (1/4/8 threads hammering resident keys) for the sharded
// cache against a single-mutex (1-shard) baseline — the many-core regime
// the mutex striping exists for. Results are also emitted as
// machine-readable JSON (BENCH_cache.json) for the perf trajectory.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/solver.h"
#include "bench/common.h"
#include "core/cholesky_executor.h"
#include "core/execution_plan.h"
#include "core/jit.h"
#include "core/pattern_key.h"
#include "core/plan_compiler.h"
#include "core/plan_store.h"
#include "core/planner.h"
#include "core/symbolic_cache.h"
#include "core/trisolve_executor.h"
#include "gen/generators.h"
#include "gen/suite.h"
#include "util/timer.h"
#include "verify/verify.h"

using namespace sympiler;

namespace {

struct ProblemRow {
  int id = 0;
  std::string name;
  double sym_cold = 0.0;
  double sym_warm = 0.0;
  double numeric = 0.0;
  /// Warm numeric factorization through the plan-compiled kernel; equals
  /// `numeric` when the plan did not compile (ineligible path or source
  /// over the size cap) — the dispatch falls back to the interpreter.
  double numeric_jit = 0.0;
  double jit_compile = 0.0;  ///< one-time host-compiler wall time
  bool jit_compiled = false;
  /// Per-phase cold breakdown recorded by the Planner in the plan's
  /// evidence (etree/counts/pattern/schedule/slotmap seconds).
  core::PlanPhaseTimes phases;
  /// Static plan verification (verify/verify.h) over the cold plan: check
  /// count, wall seconds, and the share of cold symbolic time verification
  /// would add if enabled — the overhead budget is < 10% of cold planning.
  bool verify_ok = false;
  int verify_checks = 0;
  double verify_s = 0.0;
  /// Restart warm-start tier (core/plan_store.h): seconds to deserialize
  /// the persisted plan from disk AND re-verify it before publication —
  /// the full symbolic cost a post-restart solve pays in place of cold
  /// planning. `plan_cold` is the matching denominator: a direct median
  /// of full cold Planner runs (stabler than the subtraction-based
  /// sym_cold). `store_ok` is false when the plan could not be persisted
  /// (the row then falls out of the restart_warm aggregate).
  /// `store_profitable` mirrors PlanStore::should_persist — what the
  /// facade's write-behind gate would decide; declined rows are measured
  /// and reported but excluded from the acceptance geomean, since a real
  /// restart replans them by design.
  double plan_cold = 0.0;
  double store_load = 0.0;
  bool store_ok = false;
  bool store_profitable = false;
};

/// One row of the dedicated interpreter-vs-JIT kernel comparison:
/// moderate-size patterns where the compiled kernel's baked sets are
/// demonstrably profitable (the suite's big patterns exceed the source
/// cap; the small ones drown in call overhead).
struct JitRow {
  std::string name;
  std::string path;
  double interp = 0.0;   ///< warm interpreter numeric seconds
  double jit = 0.0;      ///< warm compiled-kernel numeric seconds
  double compile = 0.0;  ///< one-time compile seconds
};

struct ContentionRow {
  int threads = 0;
  double sharded_mlps = 0.0;  ///< million lookups per second
  double single_mlps = 0.0;
};

core::PatternKey synthetic_key(int variant) {
  core::PatternKey k;
  k.rows = k.cols = 1000;
  k.nnz = 5000;
  k.structure_hash = 0x5eed0000ULL + static_cast<std::uint64_t>(variant);
  k.structure_hash2 = ~k.structure_hash * 0x9e3779b97f4a7c15ULL;
  return k;
}

/// Warm-lookup throughput: `threads` workers each doing `iters` find()s of
/// resident keys. Returns million lookups per second.
double lookup_throughput(core::CholeskyCache& cache,
                         const std::vector<core::PatternKey>& keys,
                         int threads, int iters) {
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> misses{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {}
      std::uint64_t local_misses = 0;
      for (int i = 0; i < iters; ++i) {
        const auto& key = keys[static_cast<std::size_t>(
            (t * 31 + i) % static_cast<int>(keys.size()))];
        if (!cache.find(key).hit) ++local_misses;
      }
      misses.fetch_add(local_misses);
    });
  }
  while (ready.load() != threads) {}
  Timer timer;
  go.store(true, std::memory_order_release);
  for (std::thread& w : workers) w.join();
  const double seconds = timer.seconds();
  if (misses.load() != 0) std::printf("!! warm contention lookups missed\n");
  return static_cast<double>(threads) * iters / seconds / 1e6;
}

/// Interpreter-vs-JIT on patterns sized for the comparison. Sequential
/// plans only (the facade's eligibility rule); every measurement is warm —
/// the one-time compile is reported separately, the way the paper reports
/// inspection cost.
std::vector<JitRow> run_jit_kernels(bool smoke) {
  std::vector<JitRow> rows;
  if (!core::JitModule::compiler_available()) {
    std::printf("\nPlan-compiled kernels: skipped (no host compiler)\n");
    return rows;
  }
  const int g = smoke ? 32 : 48;

  std::printf("\nPlan-compiled kernels: warm interpreter vs warm JIT\n");
  bench::print_rule(96);
  std::printf("%-22s %-18s | %12s %12s %8s | %12s\n", "pattern", "path",
              "interp(s)", "jit(s)", "speedup", "compile(s)");
  bench::print_rule(96);

  auto report = [&](JitRow row) {
    std::printf("%-22s %-18s | %12.6f %12.6f %7.2fx | %12.3f\n",
                row.name.c_str(), row.path.c_str(), row.interp, row.jit,
                row.jit > 0.0 ? row.interp / row.jit : 0.0, row.compile);
    rows.push_back(std::move(row));
  };

  // Simplicial Cholesky: the shape the baked replayed cursors (updStart)
  // target — the acceptance case.
  {
    const CscMatrix a = gen::grid2d_laplacian(g, g);
    core::SympilerOptions opt;
    opt.vs_block = false;
    core::PlannerConfig config;
    config.options = opt;
    config.enable_parallel = false;
    const auto plan = std::make_shared<const core::CholeskyPlan>(
        core::Planner(config).plan_cholesky(a));
    core::CholeskyExecutor exec(plan);
    exec.factorize(a);
    JitRow row;
    row.name = "grid2d-" + std::to_string(g);
    row.path = to_string(plan->path);
    row.interp = bench::bench_seconds([&] { exec.factorize(a); });
    const auto kernel = core::PlanCompiler::compile(*plan);
    if (kernel == nullptr) {
      std::printf("!! simplicial jit compile failed: %s\n",
                  plan->jit->failure().c_str());
    } else {
      row.compile = kernel->compile_seconds;
      row.jit = bench::bench_seconds([&] { exec.factorize(a); });
      report(std::move(row));
    }
  }

  // Supernodal Cholesky: banded pattern with wide dense supernodes.
  {
    const CscMatrix a = gen::banded_spd(smoke ? 300 : 600, 11, 2);
    core::SympilerOptions opt;
    opt.vsblock_min_avg_size = 0.0;
    opt.vsblock_min_avg_width = 0.0;
    core::PlannerConfig config;
    config.options = opt;
    config.enable_parallel = false;
    const auto plan = std::make_shared<const core::CholeskyPlan>(
        core::Planner(config).plan_cholesky(a));
    core::CholeskyExecutor exec(plan);
    exec.factorize(a);
    JitRow row;
    row.name = "banded-" + std::to_string(a.cols()) + "x11";
    row.path = to_string(plan->path);
    row.interp = bench::bench_seconds([&] { exec.factorize(a); });
    const auto kernel = core::PlanCompiler::compile(*plan);
    if (kernel == nullptr) {
      std::printf("!! supernodal jit compile failed: %s\n",
                  plan->jit->failure().c_str());
    } else {
      row.compile = kernel->compile_seconds;
      row.jit = bench::bench_seconds([&] { exec.factorize(a); });
      report(std::move(row));
    }
  }

  // Pruned triangular solve over the grid factor: sparse RHS, the paper's
  // Figure 1 pipeline.
  {
    const CscMatrix a = gen::grid2d_laplacian(g, g);
    core::SympilerOptions opt;
    opt.vs_block = false;
    core::PlannerConfig config;
    config.options = opt;
    config.enable_parallel = false;
    const auto cplan = std::make_shared<const core::CholeskyPlan>(
        core::Planner(config).plan_cholesky(a));
    core::CholeskyExecutor chol(cplan);
    chol.factorize(a);
    const CscMatrix l = chol.factor_csc();
    const std::vector<value_t> b = gen::sparse_rhs(l.cols(), 4, 17);
    std::vector<index_t> beta;
    for (index_t i = 0; i < l.cols(); ++i)
      if (b[i] != 0.0) beta.push_back(i);
    const auto plan = std::make_shared<const core::TriSolvePlan>(
        core::Planner(config).plan_trisolve(l, beta));
    core::TriSolveExecutor exec(plan, l);
    std::vector<value_t> x(b);
    JitRow row;
    row.name = "grid2d-" + std::to_string(g) + " trisolve";
    row.path = to_string(plan->path);
    row.interp = bench::bench_seconds([&] {
      std::copy(b.begin(), b.end(), x.begin());
      exec.solve(x);
    });
    const auto kernel = core::PlanCompiler::compile(*plan, l);
    if (kernel == nullptr) {
      std::printf("!! trisolve jit compile failed: %s\n",
                  plan->jit->failure().c_str());
    } else {
      row.compile = kernel->compile_seconds;
      row.jit = bench::bench_seconds([&] {
        std::copy(b.begin(), b.end(), x.begin());
        exec.solve(x);
      });
      report(std::move(row));
    }
  }
  bench::print_rule(96);
  return rows;
}

std::vector<ContentionRow> run_contention(bool smoke) {
  constexpr int kPatterns = 64;
  const int kIters = smoke ? 20000 : 200000;
  core::CholeskyCache sharded;  // default geometry: mutex-striped shards
  core::CholeskyCache single(core::CholeskyCache::kDefaultByteBudget,
                             /*shards=*/1);  // the PR-1 single-mutex shape
  std::vector<core::PatternKey> keys;
  keys.reserve(kPatterns);
  for (int v = 0; v < kPatterns; ++v) {
    keys.push_back(synthetic_key(v));
    auto plan = std::make_shared<const core::CholeskyPlan>();
    (void)sharded.insert(keys.back(), plan);
    (void)single.insert(keys.back(), plan);
  }

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf(
      "\nWarm-lookup contention: sharded (%zu shards) vs single-mutex "
      "(%u hardware threads)\n",
      sharded.shard_count(), hw);
  if (hw < 4)
    std::printf(
        "  note: threads are oversubscribed on this machine; lock "
        "contention (what sharding removes) cannot materialize, so expect "
        "parity, not speedup.\n");
  bench::print_rule(60);
  std::printf("%8s | %16s %16s | %8s\n", "threads", "sharded (Ml/s)",
              "1-mutex (Ml/s)", "ratio");
  bench::print_rule(60);
  std::vector<ContentionRow> rows;
  for (const int threads : {1, 4, 8}) {
    ContentionRow row;
    row.threads = threads;
    // Interleaved best-of-3: keeps thermal/scheduler drift symmetric and
    // reports capability, not noise.
    for (int rep = 0; rep < 3; ++rep) {
      row.sharded_mlps = std::max(
          row.sharded_mlps, lookup_throughput(sharded, keys, threads, kIters));
      row.single_mlps = std::max(
          row.single_mlps, lookup_throughput(single, keys, threads, kIters));
    }
    std::printf("%8d | %16.2f %16.2f | %7.2fx\n", threads, row.sharded_mlps,
                row.single_mlps,
                row.single_mlps > 0.0 ? row.sharded_mlps / row.single_mlps
                                      : 0.0);
    rows.push_back(row);
  }
  bench::print_rule(60);
  return rows;
}

void write_json(const std::vector<ProblemRow>& problems,
                const std::vector<JitRow>& jit,
                const std::vector<ContentionRow>& contention) {
  std::FILE* f = std::fopen("BENCH_cache.json", "w");
  if (f == nullptr) {
    std::printf("!! could not open BENCH_cache.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"cache_reuse\",\n  \"problems\": [\n");
  for (std::size_t i = 0; i < problems.size(); ++i) {
    const ProblemRow& p = problems[i];
    std::fprintf(f,
                 "    {\"id\": %d, \"name\": \"%s\", \"sym_cold_s\": %.6e, "
                 "\"sym_warm_s\": %.6e, \"numeric_s\": %.6e,\n"
                 "     \"numeric_jit_s\": %.6e, \"jit_compile_s\": %.6e, "
                 "\"jit_compiled\": %s,\n"
                 "     \"phases\": {\"transpose_s\": %.6e, \"etree_s\": %.6e, "
                 "\"counts_s\": %.6e, \"pattern_s\": %.6e, "
                 "\"assemble_s\": %.6e, \"schedule_s\": %.6e, "
                 "\"slotmap_s\": %.6e},\n"
                 "     \"verify\": {\"ok\": %s, \"checks\": %d, "
                 "\"seconds\": %.6e, \"pct_of_cold\": %.2f}}%s\n",
                 p.id, p.name.c_str(), p.sym_cold, p.sym_warm, p.numeric,
                 p.numeric_jit, p.jit_compile,
                 p.jit_compiled ? "true" : "false", p.phases.transpose,
                 p.phases.etree, p.phases.counts, p.phases.pattern,
                 p.phases.assemble, p.phases.schedule, p.phases.slotmap,
                 p.verify_ok ? "true" : "false", p.verify_checks, p.verify_s,
                 p.sym_cold > 0.0 ? p.verify_s / p.sym_cold * 100.0 : 0.0,
                 i + 1 < problems.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"jit_kernels\": [\n");
  for (std::size_t i = 0; i < jit.size(); ++i) {
    const JitRow& j = jit[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"path\": \"%s\", "
                 "\"interp_s\": %.6e, \"jit_s\": %.6e, \"speedup\": %.3f, "
                 "\"compile_s\": %.6e}%s\n",
                 j.name.c_str(), j.path.c_str(), j.interp, j.jit,
                 j.jit > 0.0 ? j.interp / j.jit : 0.0, j.compile,
                 i + 1 < jit.size() ? "," : "");
  }
  // Suite-level verify overhead: geometric mean of the per-problem
  // verify-time / cold-planning-time ratios (the <10% budget headline;
  // tiny problems have noisy subtraction-based sym_cold denominators, so
  // the aggregate is the stable number to track).
  double log_sum = 0.0;
  int pct_rows = 0;
  for (const ProblemRow& p : problems)
    if (p.sym_cold > 0.0 && p.verify_s > 0.0) {
      log_sum += std::log(p.verify_s / p.sym_cold);
      ++pct_rows;
    }
  std::fprintf(f, "  ],\n  \"verify_pct_of_cold_geomean\": %.2f,\n",
               pct_rows > 0 ? std::exp(log_sum / pct_rows) * 100.0 : 0.0);
  // Restart warm-start tiers per problem: cold planning vs plan-store
  // load + re-verify vs in-memory warm hit. The load_over_cold geomean is
  // the persistence acceptance number (budget <= 0.5) over the rows the
  // profitability gate persists; "profitable": false rows are measured
  // evidence for the gate, not part of the budget — a restart replans
  // them by design.
  std::fprintf(f, "  \"restart_warm\": [\n");
  double store_log_sum = 0.0;
  int store_rows = 0;
  for (std::size_t i = 0; i < problems.size(); ++i) {
    const ProblemRow& p = problems[i];
    const double ratio =
        p.store_ok && p.plan_cold > 0.0 ? p.store_load / p.plan_cold : 0.0;
    std::fprintf(f,
                 "    {\"id\": %d, \"name\": \"%s\", \"cold_plan_s\": %.6e, "
                 "\"store_load_reverify_s\": %.6e, \"mem_warm_s\": %.6e, "
                 "\"persisted\": %s, \"profitable\": %s, "
                 "\"load_over_cold\": %.4f}%s\n",
                 p.id, p.name.c_str(), p.plan_cold, p.store_load, p.sym_warm,
                 p.store_ok ? "true" : "false",
                 p.store_profitable ? "true" : "false", ratio,
                 i + 1 < problems.size() ? "," : "");
    if (p.store_ok && p.store_profitable && p.plan_cold > 0.0 &&
        p.store_load > 0.0) {
      store_log_sum += std::log(p.store_load / p.plan_cold);
      ++store_rows;
    }
  }
  std::fprintf(f,
               "  ],\n  \"restart_warm_load_over_cold_geomean\": %.4f,\n",
               store_rows > 0 ? std::exp(store_log_sum / store_rows) : 0.0);
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"warm_lookup_contention\": [\n");
  for (std::size_t i = 0; i < contention.size(); ++i) {
    const ContentionRow& c = contention[i];
    std::fprintf(f,
                 "    {\"threads\": %d, \"sharded_mlookups_per_s\": %.3f, "
                 "\"single_mutex_mlookups_per_s\": %.3f}%s\n",
                 c.threads, c.sharded_mlps, c.single_mlps,
                 i + 1 < contention.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_cache.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--smoke") smoke = true;

  std::printf("Symbolic cache reuse: warm-pattern solves drop the inspector\n");
  if (smoke)
    std::printf("(--smoke: first 3 suite problems, reduced contention)\n");
  bench::print_rule(131);
  std::printf("%2s %-14s | %12s %12s %10s | %12s %12s %12s | %s\n", "id",
              "name", "sym-cold(s)", "sym-warm(s)", "cold/warm", "numeric(s)",
              "num-jit(s)", "warm/num", "counters after 16 repeats");
  bench::print_rule(131);

  // Plan-store scratch directory for the restart warm-start tier. One
  // store for the whole run; removed before exit.
  char store_template[] = "/tmp/sympiler-bench-store-XXXXXX";
  std::shared_ptr<core::PlanStore> store;
  if (mkdtemp(store_template) != nullptr)
    store = core::PlanStore::open(store_template);
  else
    std::printf("!! could not create plan-store scratch dir; restart_warm "
                "rows will be skipped\n");

  std::vector<double> amortized;
  std::vector<ProblemRow> rows;
  for (const auto& spec : gen::suite()) {
    if (smoke && spec.id > 3) break;
    const CscMatrix a = spec.make();
    auto context = std::make_shared<api::SymbolicContext>();

    // Cold: first factor of this pattern pays inspection + numeric.
    api::Solver cold({}, context);
    Timer t_cold_total;
    cold.factor(a);
    const double cold_total = t_cold_total.seconds();
    // Plan size before the jit tier below publishes a kernel into it —
    // the facade's write-behind gate decides on this pre-jit size.
    const std::size_t plan_bytes = cold.plan()->bytes();

    // Numeric-only refactorization time (pattern key short-circuits; the
    // values below are unchanged, which the executor does not exploit).
    const double t_numeric = bench::bench_seconds([&] { cold.factor(a); });

    // Cold symbolic cost = total minus one numeric pass (the paper's
    // decoupling makes these phases separable by construction).
    const double sym_cold = cold_total > t_numeric ? cold_total - t_numeric
                                                   : 0.0;

    // Plan-compiled kernel tier: compile the resident plan explicitly (the
    // facade's kWarm/kAlways modes would do this on their own; driving it
    // here keeps the off-by-default knob from hiding the comparison), then
    // re-measure the warm numeric phase through the published kernel. The
    // default source cap applies — big suite patterns that exceed it
    // honestly record jit_compiled = false and keep the interpreter time.
    double numeric_jit = t_numeric;
    double jit_compile = 0.0;
    bool jit_compiled = false;
    if (cold.plan()->evidence.jit_eligible) {
      const std::size_t cap =
          static_cast<std::size_t>(core::SympilerOptions{}.jit_max_source_kb) *
          1024;
      if (const auto kernel = core::PlanCompiler::compile(*cold.plan(), cap)) {
        jit_compiled = true;
        jit_compile = kernel->compile_seconds;
        numeric_jit = bench::bench_seconds([&] { cold.factor(a); });
      }
    }

    // Warm: a brand-new Solver on the same pattern must be a cache hit.
    {
      api::Solver warm({}, context);
      warm.factor(a);
      if (!warm.symbolic_cached()) std::printf("!! expected a cache hit\n");
    }

    // Steady state: 16 more repeated-pattern factors from fresh Solvers
    // (e.g. 16 service requests) — all hits, zero inspections.
    for (int r = 0; r < 16; ++r) {
      api::Solver s({}, context);
      s.factor(a);
    }
    const CacheStats stats = context->cholesky_cache().stats();

    // The warm path's entire symbolic phase: hash the plan key, hit the
    // cache. Timed directly — this is the "inspector time" of a warm solve.
    const core::Planner planner(api::SolverConfig{}.planner_config());
    const double sym_warm = bench::bench_seconds([&] {
      const core::PatternKey key = planner.cholesky_key(a);
      auto hit = context->cholesky_cache().find(key);
      if (!hit.hit) std::printf("!! warm lookup missed\n");
    });

    // Static verification cost over the resident cold plan (the Debug
    // default runs this inside plan_cholesky; timing it standalone here
    // keeps the sym-cold column comparable to prior trajectories).
    // audit_emitted_code stays off to match the wired default: the
    // planner only audits emitted source when JIT is enabled, where the
    // re-emission cost amortizes against the host-compiler invocation.
    verify::VerifyOptions vopt;
    vopt.audit_emitted_code = false;
    const verify::Report vreport = verify::verify_plan(*cold.plan(), vopt);
    const double verify_s = bench::bench_seconds(
        [&] { (void)verify::verify_plan(*cold.plan(), vopt); });
    if (!vreport.ok())
      std::printf("!! verify found issues: %s\n", vreport.to_string().c_str());

    // Restart warm-start tier: persist the cold plan, then measure what a
    // post-restart miss actually pays — deserialize from the store plus
    // the mandatory pre-publication re-verification — against the cold
    // planning it replaces and the in-memory warm hit it approximates.
    // The cold baseline here is a direct median over repeated Planner
    // runs, not the single-shot subtraction behind `sym_cold`: the ratio
    // is an acceptance number and needs a stable denominator.
    double plan_cold = 0.0;
    double store_load = 0.0;
    bool store_ok = false;
    // What the facade's write-behind gate would decide for this plan.
    // Declined rows are still measured (the table shows *why* the gate
    // declines: their load/cold ratio hovers near 1x) but sit outside
    // the acceptance geomean — a real restart replans them by design.
    const bool store_profitable = core::PlanStore::should_persist(
        plan_bytes, cold.plan()->evidence.build_seconds,
        cold.plan()->path == core::ExecutionPath::Simplicial);
    if (store != nullptr) {
      const Status saved = store->save(*cold.plan());
      if (!saved.ok()) {
        std::printf("!! plan-store save failed: %s\n",
                    saved.to_string().c_str());
      } else {
        const core::PatternKey key = planner.cholesky_key(a);
        store_ok = true;
        plan_cold = bench::bench_seconds([&] {
          const core::Planner fresh(api::SolverConfig{}.planner_config());
          (void)fresh.plan_cholesky(a);
        });
        store_load = bench::bench_seconds([&] {
          core::CholeskyPlan loaded;
          if (!store->load(key, &loaded).ok())
            std::printf("!! plan-store load failed\n");
          if (!verify::verify_plan(loaded, vopt).ok())
            std::printf("!! store-loaded plan failed re-verification\n");
        });
      }
    }

    char jit_cell[16];
    if (jit_compiled)
      std::snprintf(jit_cell, sizeof jit_cell, "%12.5f", numeric_jit);
    else
      std::snprintf(jit_cell, sizeof jit_cell, "%12s", "interp");
    std::printf("%2d %-14s | %12.5f %12.6f %9.0fx | %12.5f %s %11.1f%% | %s\n",
                spec.id, spec.paper_name.c_str(), sym_cold, sym_warm,
                sym_warm > 0.0 ? sym_cold / sym_warm : 0.0, t_numeric, jit_cell,
                t_numeric > 0.0 ? sym_warm / t_numeric * 100.0 : 0.0,
                stats.to_string().c_str());
    std::fflush(stdout);
    if (sym_cold > 0.0 && sym_warm >= 0.0 && t_numeric > 0.0)
      amortized.push_back(sym_warm / t_numeric);
    rows.push_back({spec.id, spec.paper_name, sym_cold, sym_warm, t_numeric,
                    numeric_jit, jit_compile, jit_compiled,
                    cold.plan()->evidence.phases, vreport.ok(),
                    static_cast<int>(vreport.checks), verify_s, plan_cold,
                    store_load, store_ok, store_profitable});
  }
  bench::print_rule(131);
  std::printf(
      "geomean warm symbolic cost: %.2f%% of one numeric factorization "
      "(cold planning is eliminated on every repeat).\n",
      geomean(amortized) * 100.0);

  // Per-phase cold breakdown (the Planner stamps these into the plan's
  // evidence): where the near-linear pipeline actually spends its time.
  std::printf("\nCold planning phase breakdown (ms)\n");
  bench::print_rule(124);
  std::printf("%2s %-14s | %9s %8s %8s %9s %9s %9s %8s | %8s %7s %8s\n", "id",
              "name", "transpose", "etree", "counts", "pattern", "assemble",
              "schedule", "slotmap", "verify", "checks", "vfy/cold");
  bench::print_rule(124);
  for (const ProblemRow& p : rows) {
    const core::PlanPhaseTimes& t = p.phases;
    std::printf(
        "%2d %-14s | %9.2f %8.2f %8.2f %9.2f %9.2f %9.2f %8.2f | %8.2f %7d "
        "%7.1f%%\n",
        p.id, p.name.c_str(), t.transpose * 1e3, t.etree * 1e3, t.counts * 1e3,
        t.pattern * 1e3, t.assemble * 1e3, t.schedule * 1e3, t.slotmap * 1e3,
        p.verify_s * 1e3, p.verify_checks,
        p.sym_cold > 0.0 ? p.verify_s / p.sym_cold * 100.0 : 0.0);
  }
  bench::print_rule(124);

  // Restart warm-start: the three symbolic tiers a solve can pay. Cold
  // planning (no cache, no store), plan-store load + re-verify (fresh
  // process, warm store), in-memory warm hit (same process). The store
  // tier must stay well under cold planning — the budget is <= 0.5x,
  // tracked as a geomean in BENCH_cache.json — or persistence would not
  // be worth its disk. Rows the profitability gate declines (big
  // memory-bound simplicial plans, where loading the bytes back costs
  // about what replanning them does) are shown for evidence but kept
  // out of the acceptance geomean.
  std::printf(
      "\nRestart warm-start: plan-store load + re-verify vs cold planning "
      "(s)\n");
  bench::print_rule(92);
  std::printf("%2s %-14s | %12s %14s %12s | %10s\n", "id", "name",
              "cold-plan", "store+reverify", "mem-warm", "store/cold");
  bench::print_rule(92);
  std::vector<double> store_over_cold;
  for (const ProblemRow& p : rows) {
    if (!p.store_ok) {
      std::printf("%2d %-14s | %12.5f %14s %12.6f | %10s\n", p.id,
                  p.name.c_str(), p.plan_cold, "unpersisted", p.sym_warm, "-");
      continue;
    }
    const double ratio = p.plan_cold > 0.0 ? p.store_load / p.plan_cold : 0.0;
    std::printf("%2d %-14s | %12.5f %14.6f %12.6f | %9.3fx%s\n", p.id,
                p.name.c_str(), p.plan_cold, p.store_load, p.sym_warm, ratio,
                p.store_profitable ? "" : " (declined)");
    if (p.store_profitable && p.plan_cold > 0.0 && p.store_load > 0.0)
      store_over_cold.push_back(p.store_load / p.plan_cold);
  }
  bench::print_rule(92);
  if (!store_over_cold.empty())
    std::printf(
        "geomean store-load + re-verify cost over persisted rows: %.2fx of "
        "cold planning (budget <= 0.50x; declined rows replan by design).\n",
        geomean(store_over_cold));

  const std::vector<JitRow> jit_rows = run_jit_kernels(smoke);
  const std::vector<ContentionRow> contention = run_contention(smoke);
  write_json(rows, jit_rows, contention);
  const std::string store_dir = store != nullptr ? store->dir() : "";
  store.reset();  // drain the writer before deleting its directory
  if (!store_dir.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(store_dir, ec);
  }
  return 0;
}
