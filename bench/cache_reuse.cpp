// Cache-reuse benchmark: the repeated-pattern regime the SymbolicCache
// exists for. A service re-solving systems whose sparsity recurs (Newton
// steps, transients, batched scenarios) pays the inspector once per
// pattern; every later request finds the sets resident and runs the
// numeric phase only.
//
// For each suite problem this driver measures:
//   sym-cold : symbolic inspection on a cold cache (the miss path),
//   sym-warm : the same request served from the cache (the hit path) —
//              this is the "inspector time" a warm solve actually pays,
//   numeric  : one numeric refactorization (what reuse amortizes against),
// and reports the cache hit/miss/eviction counters after a simulated
// steady-state of repeated-pattern factors.
#include <cstdio>
#include <memory>
#include <vector>

#include "api/solver.h"
#include "bench/common.h"
#include "core/pattern_key.h"
#include "gen/suite.h"
#include "util/timer.h"

using namespace sympiler;

int main() {
  std::printf("Symbolic cache reuse: warm-pattern solves drop the inspector\n");
  bench::print_rule(118);
  std::printf("%2s %-14s | %12s %12s %10s | %12s %12s | %s\n", "id", "name",
              "sym-cold(s)", "sym-warm(s)", "cold/warm", "numeric(s)",
              "warm/num", "counters after 16 repeats");
  bench::print_rule(118);

  std::vector<double> amortized;
  for (const auto& spec : gen::suite()) {
    const CscMatrix a = spec.make();
    auto context = std::make_shared<api::SymbolicContext>();

    // Cold: first factor of this pattern pays inspection + numeric.
    api::Solver cold({}, context);
    Timer t_cold_total;
    cold.factor(a);
    const double cold_total = t_cold_total.seconds();

    // Numeric-only refactorization time (pattern key short-circuits; the
    // values below are unchanged, which the executor does not exploit).
    const double t_numeric = bench::bench_seconds([&] { cold.factor(a); });

    // Cold symbolic cost = total minus one numeric pass (the paper's
    // decoupling makes these phases separable by construction).
    const double sym_cold = cold_total > t_numeric ? cold_total - t_numeric
                                                   : 0.0;

    // Warm: a brand-new Solver on the same pattern must be a cache hit.
    {
      api::Solver warm({}, context);
      warm.factor(a);
      if (!warm.symbolic_cached()) std::printf("!! expected a cache hit\n");
    }

    // Steady state: 16 more repeated-pattern factors from fresh Solvers
    // (e.g. 16 service requests) — all hits, zero inspections.
    for (int r = 0; r < 16; ++r) {
      api::Solver s({}, context);
      s.factor(a);
    }
    const CacheStats stats = context->cholesky_cache().stats();

    // The warm path's entire symbolic phase: hash the pattern key, hit the
    // cache. Timed directly — this is the "inspector time" of a warm solve.
    const double sym_warm = bench::bench_seconds([&] {
      const core::PatternKey key = core::cholesky_pattern_key(a, {});
      auto hit = context->cholesky_cache().find(key);
      if (!hit.hit) std::printf("!! warm lookup missed\n");
    });

    std::printf("%2d %-14s | %12.5f %12.6f %9.0fx | %12.5f %11.1f%% | %s\n",
                spec.id, spec.paper_name.c_str(), sym_cold, sym_warm,
                sym_warm > 0.0 ? sym_cold / sym_warm : 0.0, t_numeric,
                t_numeric > 0.0 ? sym_warm / t_numeric * 100.0 : 0.0,
                stats.to_string().c_str());
    std::fflush(stdout);
    if (sym_cold > 0.0 && sym_warm >= 0.0 && t_numeric > 0.0)
      amortized.push_back(sym_warm / t_numeric);
  }
  bench::print_rule(118);
  std::printf(
      "geomean warm symbolic cost: %.2f%% of one numeric factorization "
      "(cold inspection is eliminated on every repeat).\n",
      geomean(amortized) * 100.0);
  return 0;
}
