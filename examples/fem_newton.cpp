// FEM / Newton-Raphson scenario (paper sections 1.2 and 4.3): a nonlinear
// solve refactorizes a Jacobian with a fixed sparsity pattern at every
// iteration. We mock a damped Newton loop on a mesh-Laplacian-shaped
// system with value-dependent coefficients and compare:
//   A. Eigen-like coupled simplicial Cholesky per iteration,
//   B. CHOLMOD-like supernodal (symbolic reused, numeric per iteration),
//   C. Sympiler facade, cold cache (inspect once, numeric per iteration),
//   D. Sympiler facade, warm cache (a later Newton run on the same mesh:
//      the symbolic phase is a cache hit and costs nothing).
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "api/solver.h"
#include "gen/generators.h"
#include "solvers/simplicial.h"
#include "solvers/supernodal.h"
#include "sparse/ops.h"
#include "util/timer.h"

using namespace sympiler;

namespace {

/// Mock "assembly": scale matrix values by a state-dependent coefficient
/// per entry; the pattern never changes (fixed mesh).
void reassemble(const CscMatrix& base, std::span<const value_t> state,
                CscMatrix& out) {
  for (index_t j = 0; j < base.cols(); ++j) {
    const value_t c = 1.0 + 0.05 * std::tanh(state[j]);
    for (index_t p = base.col_begin(j); p < base.col_end(j); ++p)
      out.values[p] = base.values[p] * (base.rowind[p] == j ? 1.0 + 0.1 * c : c);
  }
}

}  // namespace

int main() {
  const CscMatrix base = gen::grid2d_laplacian(140, 140);  // n = 19600
  const index_t n = base.cols();
  std::printf("mesh system: n=%d, nnz=%d\n", n, base.nnz());
  constexpr int kNewtonIters = 12;

  auto newton = [&](auto&& make_solver, const char* label) {
    CscMatrix a = base;
    std::vector<value_t> state(static_cast<std::size_t>(n), 0.0);
    std::vector<value_t> rhs = gen::dense_rhs(n, 3);
    Timer t;
    auto solver = make_solver(a);
    double update_norm = 0.0;
    for (int it = 0; it < kNewtonIters; ++it) {
      reassemble(base, state, a);
      std::vector<value_t> dx(rhs);
      solver(a, dx);
      update_norm = 0.0;
      for (index_t i = 0; i < n; ++i) {
        state[i] += 0.5 * dx[i];
        update_norm = std::max(update_norm, std::abs(dx[i]));
      }
    }
    std::printf("  %-22s %8.3f s   (final |dx| = %.3e)\n", label, t.seconds(),
                update_norm);
  };

  std::printf("%d Newton iterations (pattern fixed, values change):\n",
              kNewtonIters);
  newton(
      [&](const CscMatrix& a0) {
        auto solver = std::make_shared<solvers::SimplicialCholesky>(a0);
        return [solver](const CscMatrix& a, std::span<value_t> dx) {
          solver->factorize(a);
          solver->solve(dx);
        };
      },
      "Eigen-like simplicial");
  newton(
      [&](const CscMatrix& a0) {
        auto solver = std::make_shared<solvers::SupernodalCholesky>(a0);
        return [solver](const CscMatrix& a, std::span<value_t> dx) {
          solver->factorize(a);
          solver->solve(dx);
        };
      },
      "CHOLMOD-like supernodal");
  // One symbolic context shared by both facade runs: run C pays the
  // inspector (cache miss), run D reuses its sets (cache hit).
  auto context = std::make_shared<api::SymbolicContext>();
  auto facade_strategy = [&](const CscMatrix& a0) {
    auto solver = std::make_shared<api::Solver>(api::SolverConfig{}, context);
    (void)a0;  // the facade keys off the matrix passed to factor()
    return [solver](const CscMatrix& a, std::span<value_t> dx) {
      solver->factor(a);
      solver->solve(dx);
    };
  };
  newton(facade_strategy, "Sympiler facade (cold)");
  newton(facade_strategy, "Sympiler facade (warm)");

  const CacheStats stats = context->cholesky_cache().stats();
  std::printf("symbolic cache: %s (hit rate %.0f%%)\n",
              stats.to_string().c_str(), stats.hit_rate() * 100.0);
  return 0;
}
