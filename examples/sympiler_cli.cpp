// Command-line driver: run the full Sympiler pipeline on a Matrix Market
// file (e.g. an original SuiteSparse Table-2 matrix) or a named suite
// problem, and report the inspection summary, factorization performance
// vs the library baselines, and optionally the generated C code or the
// execution plan the facade would cache.
//
// Usage:
//   sympiler_cli --mtx path/to/matrix.mtx [--dump-code] [--explain] [--verify]
//   sympiler_cli --suite 10 [--dump-code] [--no-low-level] [--no-vsblock]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "api/solver.h"
#include "core/cholesky_executor.h"
#include "core/codegen.h"
#include "core/trisolve_executor.h"
#include "gen/generators.h"
#include "gen/suite.h"
#include "solvers/simplicial.h"
#include "solvers/supernodal.h"
#include "core/planner.h"
#include "sparse/io_mm.h"
#include "sparse/ops.h"
#include "util/timer.h"
#include "verify/verify.h"

using namespace sympiler;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: sympiler_cli (--mtx FILE | --suite ID) [--dump-code] "
               "[--explain] [--verify] [--no-low-level] [--no-vsblock]\n");
  return 2;
}

/// --verify: build the cold plans (Cholesky + a dense-RHS trisolve over
/// the factor pattern) and print the static verifier's report beside what
/// --explain shows — the operational view of the plan-invariant contract.
/// Exits nonzero on findings so scripts can gate on it.
int run_verify(const CscMatrix& a, core::SympilerOptions opt) {
  opt.verify_plan = false;  // the planner must not throw before we print
  core::PlannerConfig cfg;
  cfg.options = opt;
  const core::Planner planner(cfg);
  const core::CholeskyPlan cplan = planner.plan_cholesky(a);
  verify::VerifyOptions vo;
  vo.audit_emitted_code = cplan.evidence.jit_eligible;
  const verify::Report creport = verify::verify_plan(cplan, vo);
  std::printf("cholesky %s\n", creport.to_string().c_str());

  const CscMatrix& l = cplan.sets.sym.l_pattern;
  std::vector<index_t> beta(static_cast<std::size_t>(l.cols()));
  for (index_t j = 0; j < l.cols(); ++j) beta[j] = j;
  const core::TriSolvePlan tplan = planner.plan_trisolve(l, beta);
  verify::VerifyOptions tvo;
  tvo.audit_emitted_code = tplan.evidence.jit_eligible;
  const verify::Report treport = verify::verify_plan(tplan, l, beta, tvo);
  std::printf("trisolve %s\n", treport.to_string().c_str());
  return creport.ok() && treport.ok() ? 0 : 1;
}

/// --explain: factor through the api::Solver facade and print the
/// ExecutionPlan it planned (and cached), plus the cache counters after a
/// warm repeat — the operational view of the paper's decoupling.
void explain(const CscMatrix& a, const core::SympilerOptions& opt) {
  api::SolverConfig cfg;
  cfg.options = opt;
  auto context = std::make_shared<api::SymbolicContext>();
  api::Solver solver(cfg, context);
  solver.factor(a);
  std::printf("=== execution plan ===\n%s\n", solver.plan()->summary().c_str());
  std::printf("robustness: %s\n", solver.report().to_string().c_str());

  api::Solver warm(cfg, context);  // same pattern, fresh Solver: cache hit
  warm.factor(a);
  const CacheStats st = warm.cache_stats();
  std::printf(
      "cache: %s, hit_rate=%.0f%% (second Solver reused the plan: %s)\n",
      st.to_string().c_str(), st.hit_rate() * 100.0,
      warm.symbolic_cached() ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  std::string mtx_path;
  int suite_id = 0;
  bool dump_code = false;
  bool want_explain = false;
  bool want_verify = false;
  core::SympilerOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--mtx") && i + 1 < argc) {
      mtx_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--suite") && i + 1 < argc) {
      suite_id = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--dump-code")) {
      dump_code = true;
    } else if (!std::strcmp(argv[i], "--explain")) {
      want_explain = true;
    } else if (!std::strcmp(argv[i], "--verify")) {
      want_verify = true;
    } else if (!std::strcmp(argv[i], "--no-low-level")) {
      opt.low_level = false;
    } else if (!std::strcmp(argv[i], "--no-vsblock")) {
      opt.vs_block = false;
    } else {
      return usage();
    }
  }
  if (mtx_path.empty() == (suite_id == 0)) return usage();

  try {
    CscMatrix a = mtx_path.empty()
                      ? gen::suite_problem(suite_id).make()
                      : lower_triangle(read_matrix_market_file(mtx_path));
    a.validate();
    SYMPILER_CHECK(a.rows() == a.cols(), "input must be square symmetric");
    std::printf("input: %s\n", a.to_string().c_str());

    if (want_verify) {
      const int rc = run_verify(a, opt);
      if (rc != 0 || !want_explain) return rc;
    }
    if (want_explain) {
      explain(a, opt);
      return 0;
    }

    // --- inspection ---
    Timer t_ins;
    core::CholeskyExecutor chol(a, opt);
    std::printf(
        "inspection: %.1f ms | nnz(L)=%lld, %d supernodes, "
        "vsb-size=%.1f, avg colcount=%.1f -> VS-Block %s, %s kernels\n",
        t_ins.seconds() * 1e3,
        static_cast<long long>(chol.sets().sym.fill_nnz),
        chol.sets().blocks.count(), chol.sets().avg_supernode_size,
        chol.sets().avg_colcount,
        chol.vs_block_applied() ? "applied" : "skipped",
        chol.specialized_kernels() ? "specialized" : "blocked");

    // --- numeric factorization vs baselines ---
    Timer t_num;
    chol.factorize(a);
    const double t_sym = t_num.seconds();
    std::printf("numeric factorization: %.1f ms (%.2f GFLOP/s)\n",
                t_sym * 1e3, chol.flops() / t_sym * 1e-9);
    {
      solvers::SimplicialCholesky eigen_like(a);
      Timer t;
      eigen_like.factorize(a);
      std::printf("  Eigen-like simplicial:   %.1f ms (%.2fx)\n",
                  t.seconds() * 1e3, t.seconds() / t_sym);
    }
    {
      solvers::SupernodalCholesky cholmod_like(a);
      Timer t;
      cholmod_like.factorize(a);
      std::printf("  CHOLMOD-like supernodal: %.1f ms (%.2fx)\n",
                  t.seconds() * 1e3, t.seconds() / t_sym);
    }

    // --- solve sanity ---
    const std::vector<value_t> b = gen::dense_rhs(a.cols(), 1);
    std::vector<value_t> x(b);
    chol.solve(x);
    std::printf("||Ax-b||_inf = %.3e\n",
                residual_inf_norm_symmetric_lower(a, x, b));

    if (dump_code) {
      const core::GeneratedKernel k = core::generate_cholesky(chol.sets(), opt);
      std::printf("=== generated C (%zu bytes) ===\n%s\n", k.source.size(),
                  k.source.size() < 16384
                      ? k.source.c_str()
                      : "(too large to print; use a smaller matrix)");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
