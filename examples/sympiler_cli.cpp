// Command-line driver: run the full Sympiler pipeline on a Matrix Market
// file (e.g. an original SuiteSparse Table-2 matrix) or a named suite
// problem, and report the inspection summary, factorization performance
// vs the library baselines, and optionally the generated C code or the
// execution plan the facade would cache.
//
// Usage:
//   sympiler_cli --mtx path/to/matrix.mtx [--dump-code] [--explain] [--verify]
//   sympiler_cli --suite 10 [--dump-code] [--no-low-level] [--no-vsblock]
#include <cstdio>
#include <cstring>
#include <map>
#include <numeric>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "api/solver.h"
#include "core/cholesky_executor.h"
#include "core/codegen.h"
#include "core/inspector.h"
#include "core/plan_store.h"
#include "core/trisolve_executor.h"
#include "core/workspace.h"
#include "gen/generators.h"
#include "gen/suite.h"
#include "parallel/schedule.h"
#include "solvers/simplicial.h"
#include "solvers/supernodal.h"
#include "core/planner.h"
#include "sparse/io_mm.h"
#include "sparse/ops.h"
#include "util/timer.h"
#include "verify/mutate.h"
#include "verify/verify.h"

using namespace sympiler;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: sympiler_cli (--mtx FILE | --suite ID) [--dump-code] "
               "[--explain] [--verify] [--verify-corpus] [--plan-store DIR] "
               "[--no-low-level] [--no-vsblock]\n");
  return 2;
}

/// --verify: build the cold plans (Cholesky + a dense-RHS trisolve over
/// the factor pattern) and print the static verifier's report beside what
/// --explain shows — the operational view of the plan-invariant contract.
/// Exits nonzero on findings so scripts can gate on it.
int run_verify(const CscMatrix& a, core::SympilerOptions opt) {
  opt.verify_plan = false;  // the planner must not throw before we print
  core::PlannerConfig cfg;
  cfg.options = opt;
  const core::Planner planner(cfg);
  const core::CholeskyPlan cplan = planner.plan_cholesky(a);
  verify::VerifyOptions vo;
  vo.audit_emitted_code = cplan.evidence.jit_eligible;
  const verify::Report creport = verify::verify_plan(cplan, vo);
  std::printf("cholesky %s\n", creport.to_string().c_str());

  const CscMatrix& l = cplan.sets.sym.l_pattern;
  std::vector<index_t> beta(static_cast<std::size_t>(l.cols()));
  for (index_t j = 0; j < l.cols(); ++j) beta[j] = j;
  const core::TriSolvePlan tplan = planner.plan_trisolve(l, beta);
  verify::VerifyOptions tvo;
  tvo.audit_emitted_code = tplan.evidence.jit_eligible;
  const verify::Report treport = verify::verify_plan(tplan, l, beta, tvo);
  std::printf("trisolve %s\n", treport.to_string().c_str());
  return creport.ok() && treport.ok() ? 0 : 1;
}

// ---------------------------------------------------------- --verify-corpus
//
// Self-test mode: seed every verify::PlanMutator corruption class into
// every plan variant the user's matrix admits (sequential simplicial and
// supernodal, parallel-flat, coarsened; pruned/blocked/parallel trisolve
// over the factor pattern) and assert the static verifier kills each one.
// The parallel variants are assembled from the pure schedule builders so
// the corpus exercises those paths in every build, with or without OpenMP.

core::PlannerConfig sequential_config(const core::SympilerOptions& base,
                                      double vs_gate) {
  core::PlannerConfig cfg;
  cfg.options = base;
  cfg.options.vsblock_min_avg_size = vs_gate;
  cfg.options.vsblock_min_avg_width = vs_gate > 0.0 ? vs_gate : 0.0;
  cfg.options.verify_plan = false;  // corpus verifies explicitly below
  cfg.enable_parallel = false;
  return cfg;
}

core::CholeskyPlan parallel_cholesky_plan(const CscMatrix& a, bool coarsen) {
  core::SympilerOptions opt;
  opt.vsblock_min_avg_size = 0.0;
  opt.vsblock_min_avg_width = 0.0;
  core::CholeskyPlan plan;
  plan.options = opt;
  plan.sets = core::inspect_cholesky(a, opt);
  plan.schedule = parallel::level_schedule_supernodes(plan.sets.blocks,
                                                      plan.sets.sym.parent);
  plan.solve_update_map = parallel::update_slots_supernodes(plan.sets.layout);
  plan.workspace = core::cholesky_workspace_dims(plan.sets.layout);
  plan.workspace.need_dense = false;
  plan.workspace.update_slots = plan.solve_update_map.slots();
  plan.path = core::ExecutionPath::ParallelSupernodal;
  if (coarsen) {
    std::vector<index_t> dep_src(plan.sets.updates.refs.size());
    for (std::size_t u = 0; u < dep_src.size(); ++u)
      dep_src[u] = plan.sets.updates.refs[u].d;
    plan.agg = parallel::coarsen_schedule_supernodes(
        plan.sets.blocks, plan.sets.sym.parent, plan.sets.updates.ptr,
        dep_src, plan.schedule);
  }
  return plan;
}

core::TriSolvePlan parallel_trisolve_plan(const CscMatrix& l,
                                          std::span<const index_t> beta,
                                          bool coarsen) {
  core::SympilerOptions opt;
  opt.vsblock_min_avg_size = 1e9;  // column-level solve
  opt.vsblock_min_avg_width = 1e9;
  core::TriSolvePlan plan;
  plan.options = opt;
  plan.sets = core::inspect_trisolve(l, beta, opt);
  plan.schedule = parallel::level_schedule_columns(l);
  plan.update_map = parallel::update_slots_columns(l, plan.sets.reach);
  plan.workspace.n = l.cols();
  plan.workspace.need_map = false;
  plan.workspace.need_dense = false;
  plan.workspace.update_slots = plan.update_map.slots();
  plan.workspace.rhs_block = core::kRhsBlockWidth;
  plan.path = core::ExecutionPath::ParallelTriSolve;
  if (coarsen) plan.agg = parallel::coarsen_schedule_columns(l, plan.schedule);
  return plan;
}

constexpr verify::Corruption kCorpus[] = {
    verify::Corruption::kDepViolation,
    verify::Corruption::kAliasedSlot,
    verify::Corruption::kReorderedFold,
    verify::Corruption::kCrossDependentBundle,
    verify::Corruption::kOutOfBoundsIndex,
    verify::Corruption::kWorkspaceTrim,
    verify::Corruption::kScheduleGap,
    verify::Corruption::kChainReorder,
};

struct CorpusTally {
  int applicable = 0;
  int killed = 0;
};

int run_verify_corpus(const CscMatrix& a, const core::SympilerOptions& opt) {
  std::vector<std::pair<const char*, core::CholeskyPlan>> chol;
  chol.emplace_back(
      "chol/simplicial",
      core::Planner(sequential_config(opt, 1e9)).plan_cholesky(a));
  chol.emplace_back(
      "chol/supernodal",
      core::Planner(sequential_config(opt, 0.0)).plan_cholesky(a));
  chol.emplace_back("chol/parallel-flat", parallel_cholesky_plan(a, false));
  chol.emplace_back("chol/coarsened", parallel_cholesky_plan(a, true));

  const CscMatrix& l = chol[1].second.sets.sym.l_pattern;
  const std::vector<index_t> sparse_beta = {0};
  std::vector<index_t> full_beta(static_cast<std::size_t>(l.cols()));
  std::iota(full_beta.begin(), full_beta.end(), 0);
  struct TriVariant {
    const char* name;
    core::TriSolvePlan plan;
    std::span<const index_t> beta;
  };
  std::vector<TriVariant> tri;
  tri.push_back(
      {"tri/pruned",
       core::Planner(sequential_config(opt, 1e9)).plan_trisolve(l, sparse_beta),
       sparse_beta});
  tri.push_back(
      {"tri/blocked",
       core::Planner(sequential_config(opt, 0.0)).plan_trisolve(l, sparse_beta),
       sparse_beta});
  tri.push_back(
      {"tri/parallel-flat", parallel_trisolve_plan(l, full_beta, false),
       full_beta});
  tri.push_back(
      {"tri/coarsened", parallel_trisolve_plan(l, full_beta, true), full_beta});

  // Every base plan must verify clean before corruption, or the kill cells
  // below would be vacuous.
  for (const auto& [name, plan] : chol) {
    const verify::Report clean = verify::verify_plan(plan);
    if (!clean.ok()) {
      std::printf("%s base plan failed verification:\n%s\n", name,
                  clean.to_string().c_str());
      return 1;
    }
  }
  for (const auto& v : tri) {
    const verify::Report clean = verify::verify_plan(v.plan, l, v.beta);
    if (!clean.ok()) {
      std::printf("%s base plan failed verification:\n%s\n", v.name,
                  clean.to_string().c_str());
      return 1;
    }
  }

  std::map<verify::Corruption, CorpusTally> table;
  std::vector<std::string> survivors;
  for (const verify::Corruption c : kCorpus) {
    CorpusTally& tally = table[c];
    for (const auto& [name, base] : chol) {
      core::CholeskyPlan mutant = base;
      if (!verify::PlanMutator::apply(mutant, c)) continue;
      ++tally.applicable;
      if (!verify::verify_plan(mutant).ok()) {
        ++tally.killed;
      } else {
        survivors.push_back(std::string(name) + " x " + verify::to_string(c));
      }
    }
    for (const auto& v : tri) {
      core::TriSolvePlan mutant = v.plan;
      if (!verify::PlanMutator::apply(mutant, l, c)) continue;
      ++tally.applicable;
      if (!verify::verify_plan(mutant, l, v.beta).ok()) {
        ++tally.killed;
      } else {
        survivors.push_back(std::string(v.name) + " x " +
                            verify::to_string(c));
      }
    }
  }

  std::printf("=== corruption-kill table (%zu classes x %zu plan variants) "
              "===\n",
              std::size(kCorpus), chol.size() + tri.size());
  std::printf("%-24s %10s %6s\n", "class", "applicable", "killed");
  int total_applicable = 0;
  int total_killed = 0;
  for (const verify::Corruption c : kCorpus) {
    const CorpusTally& tally = table[c];
    total_applicable += tally.applicable;
    total_killed += tally.killed;
    std::printf("%-24s %10d %6d  %s\n", verify::to_string(c),
                tally.applicable, tally.killed,
                tally.applicable == 0         ? "n/a"
                : tally.killed == tally.applicable ? "KILLED"
                                                   : "SURVIVED");
  }
  std::printf("overall: %d/%d applicable cells killed\n", total_killed,
              total_applicable);
  for (const std::string& s : survivors)
    std::printf("SURVIVOR: %s\n", s.c_str());
  return total_killed == total_applicable && total_applicable > 0 ? 0 : 1;
}

/// --explain: factor through the api::Solver facade and print the
/// ExecutionPlan it planned (and cached), plus the cache counters after a
/// warm repeat — the operational view of the paper's decoupling.
void explain(const CscMatrix& a, const core::SympilerOptions& opt) {
  // Hold the store open across both Solvers so the shared instance (and
  // its counters) outlives their internal handles.
  std::shared_ptr<core::PlanStore> store;
  if (!opt.plan_store_dir.empty())
    store = core::PlanStore::open(opt.plan_store_dir);
  api::SolverConfig cfg;
  cfg.options = opt;
  auto context = std::make_shared<api::SymbolicContext>();
  api::Solver solver(cfg, context);
  solver.factor(a);
  std::printf("=== execution plan ===\n%s\n", solver.plan()->summary().c_str());
  std::printf("robustness: %s\n", solver.report().to_string().c_str());

  api::Solver warm(cfg, context);  // same pattern, fresh Solver: cache hit
  warm.factor(a);
  const CacheStats st = warm.cache_stats();
  std::printf(
      "cache: %s, hit_rate=%.0f%% (second Solver reused the plan: %s)\n",
      st.to_string().c_str(), st.hit_rate() * 100.0,
      warm.symbolic_cached() ? "yes" : "NO");

  if (store != nullptr) {
    store->flush();  // drain the write-behind queue before reading counters
    const core::PlanStore::Stats ps = store->stats();
    std::printf(
        "plan store (%s): loads=%llu (failed=%llu), writes=%llu "
        "(failed=%llu), discards=%llu, declines=%llu\n",
        store->dir().c_str(), static_cast<unsigned long long>(ps.loads),
        static_cast<unsigned long long>(ps.load_failures),
        static_cast<unsigned long long>(ps.writes),
        static_cast<unsigned long long>(ps.write_failures),
        static_cast<unsigned long long>(ps.discards),
        static_cast<unsigned long long>(ps.declines));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string mtx_path;
  int suite_id = 0;
  bool dump_code = false;
  bool want_explain = false;
  bool want_verify = false;
  bool want_corpus = false;
  core::SympilerOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--mtx") && i + 1 < argc) {
      mtx_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--suite") && i + 1 < argc) {
      suite_id = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--dump-code")) {
      dump_code = true;
    } else if (!std::strcmp(argv[i], "--explain")) {
      want_explain = true;
    } else if (!std::strcmp(argv[i], "--verify")) {
      want_verify = true;
    } else if (!std::strcmp(argv[i], "--verify-corpus")) {
      want_corpus = true;
    } else if (!std::strcmp(argv[i], "--plan-store") && i + 1 < argc) {
      opt.plan_store_dir = argv[++i];
    } else if (!std::strcmp(argv[i], "--no-low-level")) {
      opt.low_level = false;
    } else if (!std::strcmp(argv[i], "--no-vsblock")) {
      opt.vs_block = false;
    } else {
      return usage();
    }
  }
  if (mtx_path.empty() == (suite_id == 0)) return usage();

  try {
    CscMatrix a = mtx_path.empty()
                      ? gen::suite_problem(suite_id).make()
                      : lower_triangle(read_matrix_market_file(mtx_path));
    a.validate();
    SYMPILER_CHECK(a.rows() == a.cols(), "input must be square symmetric");
    std::printf("input: %s\n", a.to_string().c_str());

    if (want_corpus) {
      const int rc = run_verify_corpus(a, opt);
      if (rc != 0 || (!want_explain && !want_verify)) return rc;
    }
    if (want_verify) {
      const int rc = run_verify(a, opt);
      if (rc != 0 || !want_explain) return rc;
    }
    if (want_explain) {
      explain(a, opt);
      return 0;
    }

    // --- inspection ---
    Timer t_ins;
    core::CholeskyExecutor chol(a, opt);
    std::printf(
        "inspection: %.1f ms | nnz(L)=%lld, %d supernodes, "
        "vsb-size=%.1f, avg colcount=%.1f -> VS-Block %s, %s kernels\n",
        t_ins.seconds() * 1e3,
        static_cast<long long>(chol.sets().sym.fill_nnz),
        chol.sets().blocks.count(), chol.sets().avg_supernode_size,
        chol.sets().avg_colcount,
        chol.vs_block_applied() ? "applied" : "skipped",
        chol.specialized_kernels() ? "specialized" : "blocked");

    // --- numeric factorization vs baselines ---
    Timer t_num;
    chol.factorize(a);
    const double t_sym = t_num.seconds();
    std::printf("numeric factorization: %.1f ms (%.2f GFLOP/s)\n",
                t_sym * 1e3, chol.flops() / t_sym * 1e-9);
    {
      solvers::SimplicialCholesky eigen_like(a);
      Timer t;
      eigen_like.factorize(a);
      std::printf("  Eigen-like simplicial:   %.1f ms (%.2fx)\n",
                  t.seconds() * 1e3, t.seconds() / t_sym);
    }
    {
      solvers::SupernodalCholesky cholmod_like(a);
      Timer t;
      cholmod_like.factorize(a);
      std::printf("  CHOLMOD-like supernodal: %.1f ms (%.2fx)\n",
                  t.seconds() * 1e3, t.seconds() / t_sym);
    }

    // --- solve sanity ---
    const std::vector<value_t> b = gen::dense_rhs(a.cols(), 1);
    std::vector<value_t> x(b);
    chol.solve(x);
    std::printf("||Ax-b||_inf = %.3e\n",
                residual_inf_norm_symmetric_lower(a, x, b));

    if (dump_code) {
      const core::GeneratedKernel k = core::generate_cholesky(chol.sets(), opt);
      std::printf("=== generated C (%zu bytes) ===\n%s\n", k.source.size(),
                  k.source.size() < 16384
                      ? k.source.c_str()
                      : "(too large to print; use a smaller matrix)");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
