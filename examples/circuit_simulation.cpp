// Circuit/power-grid simulation scenario (paper section 1.2): the Jacobian
// pattern is fixed by the network topology; values change every step.
// A transient simulation performs thousands of solves against the same
// pattern — the setting where Sympiler's compile-time symbolic phase
// amortizes to zero.
//
// This example runs a mock transient loop and compares three strategies:
//   A. library-style: guarded triangular solves (Figure 1c),
//   B. Sympiler: inspect once, numeric-only solves thereafter,
//   C. naive forward solve (Figure 1b) as the floor.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "api/solver.h"
#include "gen/generators.h"
#include "lu/lu.h"
#include "order/rcm.h"
#include "solvers/trisolve.h"
#include "sparse/ops.h"
#include "util/timer.h"

using namespace sympiler;

int main() {
  // Power-grid topology: spanning tree + cross links, 20k buses.
  const index_t n = 20000;
  const CscMatrix grid_raw = gen::power_grid(n, n / 5, 11);

  // Fill-reducing ordering first, exactly like KLU runs AMD on circuit
  // matrices — hub buses must eliminate late or the factor fills in.
  const std::vector<index_t> perm = order::minimum_degree(grid_raw);
  const CscMatrix grid = permute_symmetric_lower(grid_raw, perm);

  // Conductance matrix factorization via the GP LU extension (KLU's
  // domain: circuit matrices factor with almost no fill).
  const CscMatrix a = symmetric_full_from_lower(grid);
  lu::LuFactor lu_factor(a);
  lu_factor.factorize(a);
  const CscMatrix& l = lu_factor.lower();
  std::printf("grid: n=%d, nnz(A)=%d, nnz(L)=%d (fill ratio %.2f)\n", n,
              a.nnz(), l.nnz(),
              static_cast<double>(l.nnz()) / a.nnz() * 2.0);

  // Current injections change every time step; their sparsity (which buses
  // have sources) does not.
  const std::vector<value_t> b0 = gen::sparse_rhs(n, 24, 5);
  std::vector<index_t> beta;
  for (index_t i = 0; i < n; ++i)
    if (b0[i] != 0.0) beta.push_back(i);

  // One-off symbolic inspection for the injection pattern, through the
  // facade: the sets land in the shared symbolic cache.
  auto context = std::make_shared<api::SymbolicContext>();
  Timer t_ins;
  api::TriangularSolver exec(l, beta, {}, context);
  const double inspect_s = t_ins.seconds();
  std::printf("inspector: reach-set %zu of %d columns, %.3f ms (cache %s)\n",
              exec.sets().reach.size(), n, inspect_s * 1e3,
              exec.symbolic_cached() ? "hit" : "miss");

  constexpr int kSteps = 2000;
  std::vector<value_t> x(static_cast<std::size_t>(n));
  auto transient = [&](auto&& solve) {
    Timer t;
    double checksum = 0.0;
    for (int step = 0; step < kSteps; ++step) {
      std::copy(b0.begin(), b0.end(), x.begin());
      // Values wiggle each step; the pattern stays put.
      for (const index_t i : beta) x[i] *= 1.0 + 1e-3 * std::sin(step * 0.1);
      solve(x);
      checksum += x[beta[0]];
    }
    return std::pair{t.seconds(), checksum};
  };

  const auto [t_naive, c1] = transient(
      [&](std::span<value_t> v) { solvers::trisolve_naive(l, v); });
  const auto [t_lib, c2] = transient(
      [&](std::span<value_t> v) { solvers::trisolve_library(l, v); });
  const auto [t_sym, c3] = transient([&](std::span<value_t> v) { exec.solve(v); });
  std::printf("%d transient steps:\n", kSteps);
  std::printf("  naive  (Fig 1b): %8.3f s\n", t_naive);
  std::printf("  library(Fig 1c): %8.3f s\n", t_lib);
  std::printf("  sympiler       : %8.3f s  (%.1fx vs naive, %.2fx vs "
              "library; inspection amortized over %d steps = %.2f%%)\n",
              t_sym, t_naive / t_sym, t_lib / t_sym, kSteps,
              inspect_s / t_sym * 100.0);
  // Checksums must agree across strategies.
  std::printf("  checksums: %.12e / %.12e / %.12e\n", c1, c2, c3);

  // Simulation restart (same topology, same injection buses): the symbolic
  // phase is served entirely from the cache.
  Timer t_warm;
  api::TriangularSolver warm(l, beta, {}, context);
  const double warm_s = t_warm.seconds();
  std::printf(
      "restart: symbolic setup %.3f ms (%s; cold was %.3f ms) — cache %s\n",
      warm_s * 1e3, warm.symbolic_cached() ? "cache hit" : "cache miss",
      inspect_s * 1e3, warm.cache_stats().to_string().c_str());
  return 0;
}
