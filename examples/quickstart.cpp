// Quickstart: the end-to-end Sympiler pipeline on a small SPD system.
//
//   1. build a sparse SPD matrix (2-D Laplacian),
//   2. run the symbolic inspector / "compile" the kernels for its pattern,
//   3. factorize numerically and solve,
//   4. re-solve with new values at numeric-only cost (the static-sparsity
//      workflow the paper targets).
//
// Build:  cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "core/cholesky_executor.h"
#include "core/trisolve_executor.h"
#include "gen/generators.h"
#include "sparse/ops.h"
#include "util/timer.h"

using namespace sympiler;

int main() {
  // A 64x64 grid Laplacian, nested-dissection ordered: n = 4096.
  const CscMatrix a = gen::grid2d_laplacian(64, 64);
  std::printf("matrix: %s\n", a.to_string().c_str());

  // --- "compile time": symbolic inspection for this sparsity pattern ---
  Timer t_sym;
  core::CholeskyExecutor cholesky(a);  // etree, fill, supernodes, schedule
  std::printf("symbolic inspection: %.3f ms (VS-Block %s, %d supernodes)\n",
              t_sym.seconds() * 1e3,
              cholesky.vs_block_applied() ? "applied" : "skipped",
              cholesky.sets().blocks.count());

  // --- numeric factorization + solve ---
  Timer t_num;
  cholesky.factorize(a);
  std::printf("numeric factorization: %.3f ms (%.2f GFLOP/s)\n",
              t_num.seconds() * 1e3,
              cholesky.flops() / t_num.seconds() * 1e-9);

  const std::vector<value_t> b = gen::dense_rhs(a.cols(), 42);
  std::vector<value_t> x(b);
  cholesky.solve(x);
  std::printf("||Ax - b||_inf = %.3e\n",
              residual_inf_norm_symmetric_lower(a, x, b));

  // --- sparse triangular solve on the factor, sparse RHS ---
  const CscMatrix l = cholesky.factor_csc();
  const std::vector<value_t> sparse_b = gen::rhs_from_column(a, 100, 7);
  std::vector<index_t> beta;
  for (index_t i = 0; i < l.cols(); ++i)
    if (sparse_b[i] != 0.0) beta.push_back(i);
  core::TriSolveExecutor trisolve(l, beta);  // inspector: DFS reach-set
  std::printf("sparse RHS: %zu nonzeros -> reach-set of %zu columns (of %d)\n",
              beta.size(), trisolve.sets().reach.size(), l.cols());
  std::vector<value_t> y(sparse_b);
  trisolve.solve(y);
  std::printf("||Ly - b||_inf = %.3e\n",
              residual_inf_norm(l, y, sparse_b));

  // --- static sparsity: refactorize with new values, symbolic reused ---
  CscMatrix a2 = a;
  for (auto& v : a2.values) v *= 2.0;
  Timer t_re;
  cholesky.factorize(a2);
  std::printf("refactorize (same pattern, new values): %.3f ms\n",
              t_re.seconds() * 1e3);
  return 0;
}
