// Code-generation explorer: shows the transformation pipeline of the
// paper's Figure 2 on a small system — the initial AST, the AST after
// VI-Prune, the final generated C after the low-level transformations
// (peeling with literal bounds, Figure 1e) — then JIT-compiles the result
// and verifies it against the executor.
#include <cstdio>
#include <vector>

#include "core/codegen.h"
#include "core/jit.h"
#include "core/kernels.h"
#include "core/passes.h"
#include "core/trisolve_executor.h"
#include "gen/generators.h"
#include "solvers/simplicial.h"
#include "sparse/ops.h"

using namespace sympiler;

int main() {
  // Small factor so the generated code stays readable.
  const CscMatrix a = gen::grid2d_laplacian(5, 5);
  solvers::SimplicialCholesky chol(a);
  chol.factorize(a);
  const CscMatrix l = chol.factor();
  const std::vector<value_t> b = gen::sparse_rhs(l.cols(), 2, 3);
  std::vector<index_t> beta;
  for (index_t i = 0; i < l.cols(); ++i)
    if (b[i] != 0.0) beta.push_back(i);

  std::printf("=== initial AST (Figure 2a) ===\n%s\n",
              core::to_c(core::build_trisolve_ast()).c_str());

  const core::StmtPtr pruned = core::apply_vi_prune(
      core::build_trisolve_ast(), "pruneSet", "pruneSetSize");
  std::printf("=== after VI-Prune (Figure 2b) ===\n%s\n",
              core::to_c(pruned).c_str());

  core::SympilerOptions opt;
  opt.vs_block = false;  // keep the example in Figure 1e form
  const core::GeneratedKernel kernel = core::generate_trisolve(l, beta, opt);
  std::printf("=== generated C (Figure 1e / 2c) ===\n%s\n",
              kernel.source.c_str());

  if (core::JitModule::compiler_available()) {
    const core::JitModule mod =
        core::JitModule::compile(kernel.source, kernel.symbol);
    std::vector<value_t> x(b);
    mod.entry<core::TriSolveFn>()(l.colptr.data(), l.rowind.data(),
                                  l.values.data(), x.data());
    std::printf("JIT compiled in %.0f ms; ||Lx-b||_inf = %.3e\n",
                mod.compile_seconds() * 1e3, residual_inf_norm(l, x, b));
  } else {
    std::printf("(host compiler unavailable: JIT step skipped)\n");
  }
  return 0;
}
